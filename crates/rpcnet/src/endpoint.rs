//! RPC endpoints (server side) and callers (client side).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use spritely_metrics::{LatencyStats, OpCounter, RateSeries};
use spritely_proto::{ClientId, NfsProc};
use spritely_sim::{Event, Resource, Semaphore, Sim, SimDuration, SimRng, SimTime};
use spritely_trace::{EventKind, Tracer};

use crate::network::Network;
use crate::transport::{Compoundable, TransportParams, TransportStats};
use crate::{Proc, ReplyStatus, Wire};

/// A boxed async request handler. The `u64` is the causal trace context
/// (the handler-begin event's sequence number, 0 when untraced) for the
/// handler to parent its own trace events under.
pub type HandlerFn<Req, Rep> = Rc<dyn Fn(ClientId, u64, Req) -> Pin<Box<dyn Future<Output = Rep>>>>;

/// Server-side endpoint parameters.
#[derive(Debug, Clone, Copy)]
pub struct EndpointParams {
    /// Number of service threads. An SNFS server must have at least two so
    /// that write-backs triggered by a callback can be serviced while the
    /// callback-issuing thread waits (paper §3.2).
    pub threads: usize,
    /// Host CPU charged per call (RPC decode, dispatch, encode).
    pub cpu_per_call: SimDuration,
    /// Additional host CPU charged per KB of request payload.
    pub cpu_per_kb: SimDuration,
    /// How long completed entries stay in the duplicate-request cache.
    pub dup_retention: SimDuration,
}

impl Default for EndpointParams {
    fn default() -> Self {
        EndpointParams {
            threads: 4,
            cpu_per_call: SimDuration::from_micros(400),
            cpu_per_kb: SimDuration::from_micros(100),
            dup_retention: SimDuration::from_secs(60),
        }
    }
}

enum DupState<Rep> {
    InProgress(Event),
    Done(Rep, SimTime),
}

/// Number of fixed hash buckets the duplicate-request cache is split
/// into. On a real multi-threaded server each bucket would carry its own
/// lock; here the split bounds the per-sweep work (each bucket purges on
/// its own cadence over 1/16th of the entries) and gives the contention
/// proxy something to measure.
const DUP_BUCKETS: usize = 16;

/// One duplicate-cache bucket: its own map, purge clock, and contention
/// accounting, so bucket maintenance never touches its siblings.
struct DupBucket<Rep> {
    map: RefCell<HashMap<(ClientId, u64), DupState<Rep>>>,
    /// When this bucket was last swept; sweeps run on a sim-time cadence
    /// of one retention period, per bucket.
    last_purge: Cell<SimTime>,
    /// Executions currently in flight whose completion will re-enter
    /// this bucket.
    in_flight: Cell<usize>,
    /// Fresh arrivals that found another execution in flight on the same
    /// bucket — the accesses a per-bucket lock would have serialized.
    /// With one global lock every overlapping pair would collide; the
    /// bucket split divides the collisions by the fan-out.
    contention: Cell<u64>,
}

impl<Rep> DupBucket<Rep> {
    fn new() -> Self {
        DupBucket {
            map: RefCell::new(HashMap::new()),
            last_purge: Cell::new(SimTime::ZERO),
            in_flight: Cell::new(0),
            contention: Cell::new(0),
        }
    }
}

/// Bucket index for a caller: clients get sequential ids, so a simple
/// modulus spreads them evenly.
fn dup_bucket_of(from: ClientId) -> usize {
    from.0 as usize % DUP_BUCKETS
}

struct EndpointInner<Req, Rep> {
    sim: Sim,
    threads: Resource,
    /// Admission gate for requests that may block on a consistency
    /// action ([`Proc::may_block`]): at most N−1 of the N threads, so a
    /// callback-induced write-back always finds a free thread (paper
    /// §3.2). Waiters queue here *before* taking a thread, so a stalled
    /// open costs nothing but its own latency.
    blocking: Semaphore,
    cpu: Resource,
    params: EndpointParams,
    handler: HandlerFn<Req, Rep>,
    dup: [DupBucket<Rep>; DUP_BUCKETS],
    counter: OpCounter,
    rates: RefCell<Option<RateSeries>>,
    tracer: RefCell<Option<Tracer>>,
    alive: Cell<bool>,
    executions: Cell<u64>,
    /// Retransmissions answered from a completed dup-cache entry.
    dup_hits: Cell<u64>,
    /// Retransmissions that joined an in-progress execution.
    dup_joins: Cell<u64>,
}

/// A server-side RPC endpoint: thread pool + dup cache + accounting around
/// a user-supplied async handler.
///
/// Cheap to clone. Executions are spawned as independent tasks, so a caller
/// that times out and abandons its attempt does not abort server-side work
/// (the retransmission will find the duplicate-cache entry instead).
pub struct Endpoint<Req, Rep> {
    inner: Rc<EndpointInner<Req, Rep>>,
}

impl<Req, Rep> Clone for Endpoint<Req, Rep> {
    fn clone(&self) -> Self {
        Endpoint {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<Req, Rep> Endpoint<Req, Rep>
where
    Req: Proc + Wire + 'static,
    Rep: Clone + ReplyStatus + 'static,
{
    /// Creates an endpoint.
    ///
    /// `cpu` is the host CPU resource shared with everything else on that
    /// host; `counter` receives one record per *executed* call (duplicates
    /// suppressed by the cache are not re-counted).
    ///
    /// # Panics
    ///
    /// Panics if `params.threads` is zero.
    pub fn new(
        sim: &Sim,
        name: impl Into<String>,
        cpu: Resource,
        params: EndpointParams,
        counter: OpCounter,
        handler: HandlerFn<Req, Rep>,
    ) -> Self {
        assert!(params.threads > 0, "endpoint needs at least one thread");
        Endpoint {
            inner: Rc::new(EndpointInner {
                sim: sim.clone(),
                threads: Resource::new(sim, name, params.threads),
                blocking: Semaphore::new(params.threads.saturating_sub(1).max(1)),
                cpu,
                params,
                handler,
                dup: std::array::from_fn(|_| DupBucket::new()),
                counter,
                rates: RefCell::new(None),
                tracer: RefCell::new(None),
                alive: Cell::new(true),
                executions: Cell::new(0),
                dup_hits: Cell::new(0),
                dup_joins: Cell::new(0),
            }),
        }
    }

    /// Attaches a rate series that will record every executed call.
    pub fn set_rate_series(&self, rates: RateSeries) {
        *self.inner.rates.borrow_mut() = Some(rates);
    }

    /// Attaches a tracer: every handler execution is recorded as a
    /// `handler_begin`/`handler_end` span, causally linked to the
    /// originating `rpc_call` event.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.inner.tracer.borrow_mut() = Some(tracer);
    }

    /// The per-procedure counter.
    pub fn counter(&self) -> &OpCounter {
        &self.inner.counter
    }

    /// The service thread pool (for utilization reporting).
    pub fn threads(&self) -> &Resource {
        &self.inner.threads
    }

    /// Number of handler executions (excludes dup-cache hits).
    pub fn executions(&self) -> u64 {
        self.inner.executions.get()
    }

    /// Retransmissions answered from a completed dup-cache entry.
    pub fn dup_hits(&self) -> u64 {
        self.inner.dup_hits.get()
    }

    /// Retransmissions that joined an in-progress execution.
    pub fn dup_joins(&self) -> u64 {
        self.inner.dup_joins.get()
    }

    /// Current duplicate-cache population across all buckets (purge
    /// tests).
    pub fn dup_entries(&self) -> usize {
        self.inner.dup.iter().map(|b| b.map.borrow().len()).sum()
    }

    /// Fresh arrivals that found another execution in flight on their
    /// bucket — the accesses a per-bucket dup-cache lock would have
    /// serialized on a threaded server.
    pub fn dup_contention(&self) -> u64 {
        self.inner.dup.iter().map(|b| b.contention.get()).sum()
    }

    /// The configured dup-cache retention.
    pub fn dup_retention(&self) -> SimDuration {
        self.inner.params.dup_retention
    }

    /// Discards every completed dup-cache entry, modelling a server
    /// whose in-memory dup cache did not survive (a reboot, or an
    /// eviction storm). A retransmission arriving afterwards will
    /// re-execute its procedure — exactly the hazard the clients'
    /// retransmit-outcome mapping defends against.
    pub fn clear_dup_cache(&self) {
        for bucket in &self.inner.dup {
            bucket
                .map
                .borrow_mut()
                .retain(|_, v| matches!(v, DupState::InProgress(_)));
        }
    }

    /// Marks the endpoint up or down. Calls to a down endpoint hang until
    /// the caller's timeout fires.
    pub fn set_alive(&self, alive: bool) {
        self.inner.alive.set(alive);
    }

    /// Returns true if the endpoint accepts requests.
    pub fn is_alive(&self) -> bool {
        self.inner.alive.get()
    }

    /// Delivers a request, executing it once per `(from, xid)` and serving
    /// retransmissions from the duplicate cache. `parent` is the trace
    /// context of the originating `rpc_call` event (0 when untraced).
    pub async fn deliver(&self, from: ClientId, xid: u64, parent: u64, req: Req) -> Rep {
        let key = (from, xid);
        let bucket = &self.inner.dup[dup_bucket_of(from)];
        let ev = {
            let mut dup = bucket.map.borrow_mut();
            // Arrival boundary for the latency profiler: the gap from a
            // fresh arrival to its handler_begin is admission wait. Pure
            // observation — no await, no randomness.
            if let Some(t) = self.inner.tracer.borrow().as_ref() {
                t.emit(
                    parent,
                    EventKind::RpcArrive {
                        from,
                        xid,
                        dup: dup.contains_key(&key),
                    },
                );
            }
            match dup.get(&key) {
                Some(DupState::Done(rep, _)) => {
                    self.inner.dup_hits.set(self.inner.dup_hits.get() + 1);
                    return rep.clone();
                }
                Some(DupState::InProgress(ev)) => {
                    self.inner.dup_joins.set(self.inner.dup_joins.get() + 1);
                    ev.clone()
                }
                None => {
                    // Pure accounting: how often would a per-bucket lock
                    // have been contended by a concurrent execution?
                    if bucket.in_flight.get() > 0 {
                        bucket.contention.set(bucket.contention.get() + 1);
                    }
                    bucket.in_flight.set(bucket.in_flight.get() + 1);
                    let ev = Event::new();
                    dup.insert(key, DupState::InProgress(ev.clone()));
                    drop(dup);
                    self.spawn_execution(key, from, parent, req);
                    ev
                }
            }
        };
        ev.wait().await;
        match bucket.map.borrow().get(&key) {
            Some(DupState::Done(rep, _)) => rep.clone(),
            _ => unreachable!("execution completed without a Done entry"),
        }
    }

    fn spawn_execution(&self, key: (ClientId, u64), from: ClientId, parent: u64, req: Req) {
        let inner = Rc::clone(&self.inner);
        let proc = req.proc_id();
        let kb = req.wire_size() as f64 / 1024.0;
        let gated = req.may_block();
        inner.sim.clone().spawn(async move {
            // N−1 admission (§3.2): a request that may block on a
            // consistency action queues for a blocking slot before it
            // may occupy a thread. When uncontended the acquire
            // completes synchronously, so ungated traffic is unaffected.
            let _gate = if gated {
                Some(inner.blocking.acquire().await)
            } else {
                None
            };
            let thread = inner.threads.acquire().await;
            inner.counter.record(proc);
            if let Some(r) = inner.rates.borrow().as_ref() {
                r.record_at(inner.sim.now(), proc);
            }
            let ctx = match inner.tracer.borrow().as_ref() {
                Some(t) => t.emit(
                    parent,
                    EventKind::HandlerBegin {
                        from,
                        xid: key.1,
                        proc,
                    },
                ),
                None => 0,
            };
            let cpu_time = inner.params.cpu_per_call + inner.params.cpu_per_kb.mul_f64(kb);
            if !cpu_time.is_zero() {
                inner.cpu.use_for(cpu_time).await;
            }
            let rep = (inner.handler)(from, ctx, req).await;
            if let Some(t) = inner.tracer.borrow().as_ref() {
                t.emit(
                    ctx,
                    EventKind::HandlerEnd {
                        from,
                        xid: key.1,
                        proc,
                        ok: rep.trace_ok(),
                    },
                );
            }
            drop(thread);
            inner.executions.set(inner.executions.get() + 1);
            let now = inner.sim.now();
            let bucket = &inner.dup[dup_bucket_of(from)];
            bucket.in_flight.set(bucket.in_flight.get() - 1);
            let mut dup = bucket.map.borrow_mut();
            let prev = dup.insert(key, DupState::Done(rep, now));
            // Sweep this bucket's expired entries once per retention
            // period of sim time. (The old trigger — `len()` an exact
            // multiple of 1024 — let a replace-heavy workload hop over
            // the boundary and never purge.) The sweep is pure map
            // maintenance: no awaits, no randomness, so it cannot
            // perturb timing; bucketing bounds each sweep to its own
            // slice of the cache.
            let retention = inner.params.dup_retention;
            if now.saturating_duration_since(bucket.last_purge.get()) >= retention {
                bucket.last_purge.set(now);
                dup.retain(|_, v| match v {
                    DupState::InProgress(_) => true,
                    DupState::Done(_, t) => now.saturating_duration_since(*t) < retention,
                });
            }
            drop(dup);
            match prev {
                Some(DupState::InProgress(ev)) => ev.set(),
                _ => unreachable!("execution finished without an InProgress entry"),
            }
        });
    }
}

/// Errors a [`Caller`] can return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply after all retransmissions.
    Timeout,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "RPC timed out after retries"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Client-side caller parameters.
#[derive(Debug, Clone, Copy)]
pub struct CallerParams {
    /// Per-attempt reply timeout.
    pub timeout: SimDuration,
    /// Retransmissions after the first attempt.
    pub max_retries: u32,
    /// Caller-host CPU charged per call (argument marshalling etc.).
    pub cpu_per_call: SimDuration,
}

impl Default for CallerParams {
    fn default() -> Self {
        CallerParams {
            timeout: SimDuration::from_secs(1),
            max_retries: 4,
            cpu_per_call: SimDuration::from_micros(300),
        }
    }
}

/// One request parked in a caller's batch queue, with the slot its
/// reply will be delivered through.
struct BatchEntry<Req, Rep> {
    xid: u64,
    parent: u64,
    req: Req,
    slot: Rc<RefCell<Option<Rep>>>,
    done: Event,
}

/// The Nagle-style batching queue behind a caller (present only when
/// `TransportParams::max_batch > 1`), used by background traffic only
/// (`Caller::call_bg`): foreground calls keep the unbatched wire path,
/// so they are never delayed and never wait behind a compound's
/// slowest member. A background request with no batch in flight is
/// sent at once (a lone call pays no extra latency); while a batch is
/// outstanding, followers park here and flush as one compound when the
/// outstanding batch completes, `max_batch` accumulate, or the
/// `batch_window` safety deadline fires. Each flush pays one wire
/// exchange for the whole batch.
struct Batcher<Req, Rep> {
    sim: Sim,
    net: Network,
    endpoint: Endpoint<Req, Rep>,
    from: ClientId,
    max_batch: usize,
    window: SimDuration,
    queue: RefCell<Vec<BatchEntry<Req, Rep>>>,
    window_armed: Cell<bool>,
    inflight: Cell<usize>,
    next_id: Cell<u64>,
    stats: RefCell<Option<TransportStats>>,
    tracer: RefCell<Option<Tracer>>,
}

impl<Req, Rep> Batcher<Req, Rep>
where
    Req: Proc + Wire + Clone + Compoundable + 'static,
    Rep: Wire + Clone + ReplyStatus + Compoundable + 'static,
{
    /// Parks one background request. Returns the reply slot and the
    /// event that fires once the flush has filled it. Only background
    /// traffic (write-behind, read-ahead) enters the batcher, so no
    /// latency-sensitive call ever waits behind a compound's slowest
    /// member.
    fn enqueue(
        self: &Rc<Self>,
        xid: u64,
        parent: u64,
        req: Req,
    ) -> (Rc<RefCell<Option<Rep>>>, Event) {
        let slot = Rc::new(RefCell::new(None));
        let done = Event::new();
        let len = {
            let mut q = self.queue.borrow_mut();
            q.push(BatchEntry {
                xid,
                parent,
                req,
                slot: Rc::clone(&slot),
                done: done.clone(),
            });
            q.len()
        };
        if len >= self.max_batch || self.inflight.get() == 0 {
            // Full batch, or nothing outstanding (Nagle: an idle caller
            // sends immediately instead of holding a lone request for
            // the window).
            self.flush_now();
        } else if !self.window_armed.get() {
            self.window_armed.set(true);
            let b = Rc::clone(self);
            self.sim.clone().spawn(async move {
                b.sim.sleep(b.window).await;
                b.window_armed.set(false);
                b.flush_now();
            });
        }
        (slot, done)
    }

    /// Flushes whatever has accumulated (no-op on an empty queue). The
    /// queue is partitioned by procedure — reads compound with reads,
    /// writes with writes — because a compound's reply waits for its
    /// slowest member: mixing a cached read into a disk write's batch
    /// would hand the read the write's latency.
    fn flush_now(self: &Rc<Self>) {
        let batch = std::mem::take(&mut *self.queue.borrow_mut());
        if batch.is_empty() {
            return;
        }
        let mut groups: Vec<(NfsProc, Vec<BatchEntry<Req, Rep>>)> = Vec::new();
        for e in batch {
            let pid = e.req.proc_id();
            match groups.iter_mut().find(|(p, _)| *p == pid) {
                Some((_, g)) => g.push(e),
                None => groups.push((pid, vec![e])),
            }
        }
        for (_, g) in groups {
            self.spawn_flush(g);
        }
    }

    /// Marks one outstanding flush complete; once the last one drains,
    /// ack-clocks the next batch out.
    fn finish_flush(self: &Rc<Self>) {
        self.inflight.set(self.inflight.get() - 1);
        if self.inflight.get() == 0 {
            self.flush_now();
        }
    }

    fn spawn_flush(self: &Rc<Self>, batch: Vec<BatchEntry<Req, Rep>>) {
        self.inflight.set(self.inflight.get() + 1);
        let b = Rc::clone(self);
        self.sim.clone().spawn(async move {
            let n = batch.len();
            let id = b.next_id.get();
            b.next_id.set(id + 1);
            if let Some(s) = b.stats.borrow().as_ref() {
                s.batch_sizes.record(n as u64);
                // Every request after the first rides along: one saved
                // round trip each, attributed to its procedure.
                for e in batch.iter().skip(1) {
                    s.saved.record(e.req.proc_id());
                }
            }
            if let Some(t) = b.tracer.borrow().as_ref() {
                t.emit(
                    0,
                    EventKind::Batch {
                        from: b.from,
                        id,
                        count: n as u64,
                        reply: false,
                    },
                );
            }
            // A compound is one datagram: the fault layer drops,
            // duplicates, or delays it as a unit, and a lost compound
            // must retransmit as a unit (each member re-enqueues on its
            // own timeout with its original xid).
            let plan = b.net.plan_attempt(b.from.0, false);
            if !plan.delay.is_zero() {
                b.sim.sleep(plan.delay).await;
            }
            let creq = Req::compound(batch.iter().map(|e| e.req.clone()).collect());
            if let Some(t) = b.tracer.borrow().as_ref() {
                // Every member leaves the wire at the compound's flush
                // instant; each gets its own xmit boundary so the
                // profiler can split batcher hold from transit.
                for e in &batch {
                    t.emit(
                        e.parent,
                        EventKind::RpcXmit {
                            from: b.from,
                            xid: e.xid,
                        },
                    );
                }
            }
            b.net.transmit_from(b.from.0, true, creq.wire_size()).await;
            if plan.drop {
                // The whole compound is eaten: every member attempt is
                // killed and will retransmit individually.
                for e in &batch {
                    b.net.note_kill(b.from.0, false, e.xid);
                }
                b.finish_flush();
                return;
            }
            if !b.endpoint.is_alive() {
                // The whole batch is lost; each caller's timeout fires
                // and the retransmissions re-enqueue.
                b.finish_flush();
                return;
            }
            if plan.duplicate {
                // A second copy of the compound arrives: every member
                // xid hits the dup cache, the combined reply is
                // discarded.
                let b2 = Rc::clone(&b);
                let reqs: Vec<(u64, u64, Req)> = batch
                    .iter()
                    .map(|e| (e.xid, e.parent, e.req.clone()))
                    .collect();
                let csize = creq.wire_size();
                b.sim.spawn(async move {
                    b2.net.transmit_from(b2.from.0, true, csize).await;
                    if !b2.endpoint.is_alive() {
                        return;
                    }
                    let mut reps = Vec::with_capacity(reqs.len());
                    for (xid, parent, req) in reqs {
                        reps.push(b2.endpoint.deliver(b2.from, xid, parent, req).await);
                    }
                    let crep = Rep::compound(reps);
                    b2.net
                        .transmit_from(b2.from.0, false, crep.wire_size())
                        .await;
                });
            }
            // Deliver every inner request concurrently — each keeps its
            // own xid, so dup-cache entries and per-procedure counters
            // are exactly what the unbatched transport would produce.
            let remaining = Rc::new(Cell::new(n));
            let results: Rc<RefCell<Vec<Option<Rep>>>> =
                Rc::new(RefCell::new((0..n).map(|_| None).collect()));
            let all_done = Event::new();
            for (i, e) in batch.iter().enumerate() {
                let ep = b.endpoint.clone();
                let from = b.from;
                let (xid, parent, req) = (e.xid, e.parent, e.req.clone());
                let remaining = Rc::clone(&remaining);
                let results = Rc::clone(&results);
                let all_done = all_done.clone();
                b.sim.spawn(async move {
                    let rep = ep.deliver(from, xid, parent, req).await;
                    results.borrow_mut()[i] = Some(rep);
                    remaining.set(remaining.get() - 1);
                    if remaining.get() == 0 {
                        all_done.set();
                    }
                });
            }
            all_done.wait().await;
            let reps: Vec<Rep> = results
                .borrow_mut()
                .drain(..)
                .map(|r| r.expect("every inner deliver completed"))
                .collect();
            let crep = Rep::compound(reps.clone());
            if let Some(t) = b.tracer.borrow().as_ref() {
                t.emit(
                    0,
                    EventKind::Batch {
                        from: b.from,
                        id,
                        count: n as u64,
                        reply: true,
                    },
                );
            }
            b.net.transmit_from(b.from.0, false, crep.wire_size()).await;
            let first_xid = batch.first().map(|e| e.xid).unwrap_or(0);
            if plan.reply_loss || b.net.reply_lost(b.from.0, false, first_xid) {
                // The combined reply vanishes after every member
                // executed: no slot is filled, so each member's timeout
                // fires and its retransmission is absorbed by the dup
                // cache.
                for e in &batch {
                    b.net.note_kill(b.from.0, false, e.xid);
                }
                b.finish_flush();
                return;
            }
            for (e, rep) in batch.into_iter().zip(reps) {
                *e.slot.borrow_mut() = Some(rep);
                e.done.set();
            }
            b.finish_flush();
        });
    }
}

/// A client-side RPC caller bound to one endpoint over one network.
pub struct Caller<Req, Rep> {
    sim: Sim,
    net: Network,
    endpoint: Endpoint<Req, Rep>,
    from: ClientId,
    cpu: Resource,
    params: CallerParams,
    transport: Cell<TransportParams>,
    /// Shared across clones: a clone is another handle on the same
    /// logical caller, and the endpoint's duplicate-request cache keys
    /// on `(from, xid)` — if a clone restarted the sequence, its calls
    /// would collide with the original's and be answered from the cache
    /// without ever reaching the handler.
    next_xid: Rc<Cell<u64>>,
    retransmits: Cell<u64>,
    latency: RefCell<Option<LatencyStats>>,
    tracer: RefCell<Option<Tracer>>,
    tstats: RefCell<Option<TransportStats>>,
    batcher: RefCell<Option<Rc<Batcher<Req, Rep>>>>,
    /// Deterministic per-caller stream for retransmission jitter; only
    /// consumed when `backoff_jitter > 0`, so paper-mode runs draw
    /// nothing from it.
    rng: SimRng,
    /// `(host, to_client)` key this caller's traffic presents to the
    /// fault layer. Defaults to `(from.0, false)`; callback callers
    /// (which all carry `ClientId(0)`) override it with their target
    /// client's host so partitions cut the right legs.
    fault_link: Cell<(u32, bool)>,
}

impl<Req, Rep> Clone for Caller<Req, Rep> {
    fn clone(&self) -> Self {
        Caller {
            sim: self.sim.clone(),
            net: self.net.clone(),
            endpoint: self.endpoint.clone(),
            from: self.from,
            cpu: self.cpu.clone(),
            params: self.params,
            transport: Cell::new(self.transport.get()),
            next_xid: Rc::clone(&self.next_xid),
            retransmits: Cell::new(0),
            latency: RefCell::new(self.latency.borrow().clone()),
            tracer: RefCell::new(self.tracer.borrow().clone()),
            tstats: RefCell::new(self.tstats.borrow().clone()),
            batcher: RefCell::new(self.batcher.borrow().clone()),
            rng: self.rng.clone(),
            fault_link: Cell::new(self.fault_link.get()),
        }
    }
}

impl<Req, Rep> Caller<Req, Rep>
where
    Req: Proc + Wire + Clone + Compoundable + 'static,
    Rep: Wire + Clone + ReplyStatus + Compoundable + 'static,
{
    /// Creates a caller. `cpu` is the calling host's CPU; `from` identifies
    /// the calling host to the endpoint's dup cache and handler.
    pub fn new(
        sim: &Sim,
        net: Network,
        endpoint: Endpoint<Req, Rep>,
        from: ClientId,
        cpu: Resource,
        params: CallerParams,
    ) -> Self {
        let caller = Caller {
            sim: sim.clone(),
            net,
            endpoint,
            from,
            cpu,
            params,
            transport: Cell::new(TransportParams::paper()),
            next_xid: Rc::new(Cell::new(0)),
            retransmits: Cell::new(0),
            latency: RefCell::new(None),
            tracer: RefCell::new(None),
            tstats: RefCell::new(None),
            batcher: RefCell::new(None),
            rng: SimRng::new(0x7ab5_0000 ^ u64::from(from.0)),
            fault_link: Cell::new((from.0, false)),
        };
        caller.assert_retention_covers_ladder();
        caller
    }

    /// Upper bound of the retransmission ladder: the sum of every
    /// attempt's timeout at the current transport's backoff settings,
    /// with jitter at its worst.
    fn worst_case_ladder(&self) -> SimDuration {
        let t = self.transport.get();
        let mut total = SimDuration::ZERO;
        for attempt in 0..=self.params.max_retries {
            let mut a = self.params.timeout;
            if t.backoff_factor > 1.0 {
                for _ in 0..attempt {
                    a = a.mul_f64(t.backoff_factor);
                    if a >= t.backoff_max {
                        a = t.backoff_max;
                        break;
                    }
                }
            }
            if t.backoff_jitter > 0.0 {
                a = a.mul_f64(1.0 + t.backoff_jitter * 0.5);
            }
            total += a;
        }
        total
    }

    /// The dup cache is the only thing standing between a retransmitted
    /// non-idempotent procedure and double execution, so completed
    /// entries must outlive the longest possible retransmission ladder:
    /// if an entry could expire while its call was still retrying, the
    /// retransmission would re-execute (create → `EEXIST`, remove →
    /// `ENOENT` to the application).
    fn assert_retention_covers_ladder(&self) {
        let ladder = self.worst_case_ladder();
        let retention = self.endpoint.dup_retention();
        assert!(
            retention > ladder,
            "dup_retention ({retention}) must exceed the worst-case \
             retransmission ladder ({ladder})"
        );
    }

    /// Configures the transport pipeline. With `max_batch > 1` a
    /// batching queue is installed; the default is the paper transport
    /// (no batching, fixed retransmit timeout).
    pub fn set_transport(&self, t: TransportParams) {
        self.transport.set(t);
        self.assert_retention_covers_ladder();
        *self.batcher.borrow_mut() = (t.max_batch > 1).then(|| {
            Rc::new(Batcher {
                sim: self.sim.clone(),
                net: self.net.clone(),
                endpoint: self.endpoint.clone(),
                from: self.from,
                max_batch: t.max_batch,
                window: t.batch_window,
                queue: RefCell::new(Vec::new()),
                window_armed: Cell::new(false),
                inflight: Cell::new(0),
                next_id: Cell::new(0),
                stats: RefCell::new(self.tstats.borrow().clone()),
                tracer: RefCell::new(self.tracer.borrow().clone()),
            })
        });
    }

    /// The active transport configuration.
    pub fn transport(&self) -> TransportParams {
        self.transport.get()
    }

    /// Attaches shared transport observability (batch-size histogram +
    /// saved-round-trip counter).
    pub fn set_transport_stats(&self, stats: TransportStats) {
        if let Some(b) = self.batcher.borrow().as_ref() {
            *b.stats.borrow_mut() = Some(stats.clone());
        }
        *self.tstats.borrow_mut() = Some(stats);
    }

    /// Attaches a latency recorder; every subsequent call's end-to-end
    /// time (including queueing, retransmissions and the reply) is
    /// recorded under its procedure.
    pub fn set_latency_stats(&self, stats: LatencyStats) {
        *self.latency.borrow_mut() = Some(stats);
    }

    /// Attaches a tracer: every call is recorded as an `rpc_call` /
    /// `rpc_reply` pair keyed by xid (and every batch flush as a
    /// `batch` pair when batching is on).
    pub fn set_tracer(&self, tracer: Tracer) {
        if let Some(b) = self.batcher.borrow().as_ref() {
            *b.tracer.borrow_mut() = Some(tracer.clone());
        }
        *self.tracer.borrow_mut() = Some(tracer);
    }

    /// The caller's client id.
    pub fn client_id(&self) -> ClientId {
        self.from
    }

    /// Makes this caller draw xids from `other`'s sequence. A sharded
    /// client (or a shard's coordination fan-out) holds one caller per
    /// peer endpoint but is a single logical RPC source: `(from, xid)`
    /// must stay globally unique or independently-numbered callers
    /// would present colliding pairs to the dup caches and the trace
    /// checker's at-most-once rule.
    pub fn share_xids_with(&mut self, other: &Self) {
        self.next_xid = Rc::clone(&other.next_xid);
    }

    /// Re-keys this caller's traffic for the fault layer. Callback
    /// callers all carry `ClientId(0)` (the server), so the testbed
    /// points them at the *target client's* host with `to_client =
    /// true`; a partition of that host then cuts callbacks to it, not
    /// to everyone.
    pub fn set_fault_link(&self, host: u32, to_client: bool) {
        self.fault_link.set((host, to_client));
    }

    /// Total retransmissions so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.get()
    }

    /// Flushes any background requests parked in the batcher right now.
    /// Clients call this when a foreground path is about to *wait* on
    /// background work — a close draining write-behind, a read
    /// coalescing with an in-flight read-ahead — so the waiter never
    /// pays the Nagle window on top of the RPC itself. A no-op on the
    /// paper transport.
    pub fn kick(&self) {
        if let Some(b) = self.batcher.borrow().as_ref() {
            b.flush_now();
        }
    }

    /// Issues one RPC: marshal, transmit, await the reply, with timeout and
    /// retransmission. At-most-once execution is guaranteed by the
    /// endpoint's duplicate cache.
    pub async fn call(&self, req: Req) -> Result<Rep, RpcError> {
        self.call_inner(0, req, false).await.map(|(rep, _)| rep)
    }

    /// Like [`Caller::call`], but parents the `rpc_call` trace event
    /// under `parent` (a client-operation span, usually).
    pub async fn call_ctx(&self, parent: u64, req: Req) -> Result<Rep, RpcError> {
        self.call_inner(parent, req, false)
            .await
            .map(|(rep, _)| rep)
    }

    /// Like [`Caller::call_ctx`], but also reports whether the reply
    /// arrived only after at least one retransmission. A retransmitted
    /// non-idempotent procedure can have executed on an earlier attempt
    /// whose reply was lost; if the dup-cache entry has meanwhile been
    /// discarded, the re-execution reports a bogus error (`EEXIST` for
    /// create, `ENOENT` for remove). Clients use the flag to map those
    /// specific outcomes back to success.
    pub async fn call_ctx_flagged(&self, parent: u64, req: Req) -> Result<(Rep, bool), RpcError> {
        self.call_inner(parent, req, false).await
    }

    /// Background variant of [`Caller::call_ctx`] for write-behind and
    /// read-ahead traffic: the batcher may hold such a call briefly to
    /// coalesce it with its peers, which it never does to a foreground
    /// call. Identical to `call_ctx` on the paper transport.
    pub async fn call_bg(&self, parent: u64, req: Req) -> Result<Rep, RpcError> {
        self.call_inner(parent, req, true).await.map(|(rep, _)| rep)
    }

    async fn call_inner(&self, parent: u64, req: Req, bg: bool) -> Result<(Rep, bool), RpcError> {
        if !self.params.cpu_per_call.is_zero() {
            self.cpu.use_for(self.params.cpu_per_call).await;
        }
        let xid = self.next_xid.get();
        self.next_xid.set(xid + 1);
        let started = self.sim.now();
        let proc = req.proc_id();
        let rpc_seq = match self.tracer.borrow().as_ref() {
            Some(t) => {
                let (offset, len) = req.trace_range();
                t.emit(
                    parent,
                    EventKind::RpcCall {
                        from: self.from,
                        xid,
                        proc,
                        fh: req.trace_fh(),
                        offset,
                        len,
                    },
                )
            }
            None => 0,
        };
        let attempts = 1 + self.params.max_retries;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retransmits.set(self.retransmits.get() + 1);
            }
            let fut = self.attempt(xid, rpc_seq, req.clone(), bg);
            match self.sim.timeout(self.attempt_timeout(attempt), fut).await {
                Ok(rep) => {
                    if let Some(l) = self.latency.borrow().as_ref() {
                        l.record(proc, self.sim.now().duration_since(started));
                    }
                    if let Some(t) = self.tracer.borrow().as_ref() {
                        t.emit(
                            rpc_seq,
                            EventKind::RpcReply {
                                from: self.from,
                                xid,
                                proc,
                                ok: rep.trace_ok(),
                            },
                        );
                    }
                    // Any attempts the fault layer killed for this xid
                    // were absorbed by retransmission.
                    let (lh, lc) = self.fault_link.get();
                    self.net.absorb_kills(lh, lc, xid);
                    return Ok((rep, attempt > 0));
                }
                Err(_) => continue,
            }
        }
        Err(RpcError::Timeout)
    }

    /// Per-attempt timeout: the paper's fixed value, or — when backoff
    /// is configured — an exponentially growing one with deterministic
    /// jitter so simultaneous retransmitters desynchronize instead of
    /// storming the server in lockstep.
    fn attempt_timeout(&self, attempt: u32) -> SimDuration {
        let t = self.transport.get();
        let mut d = self.params.timeout;
        if t.backoff_factor > 1.0 {
            for _ in 0..attempt {
                d = d.mul_f64(t.backoff_factor);
                if d >= t.backoff_max {
                    d = t.backoff_max;
                    break;
                }
            }
        }
        if t.backoff_jitter > 0.0 {
            d = d.mul_f64(1.0 + t.backoff_jitter * (self.rng.f64() - 0.5));
        }
        d
    }

    async fn attempt(&self, xid: u64, parent: u64, req: Req, bg: bool) -> Rep {
        if bg {
            let batcher = self.batcher.borrow().clone();
            if let Some(b) = batcher {
                // Batched path: park the request; the flush task pays
                // one wire exchange for the whole batch and fills the
                // slot. Foreground calls never take this path — a
                // compound's reply waits for its slowest member, and a
                // latency-sensitive call must not wait behind a
                // batched disk write.
                let (slot, done) = b.enqueue(xid, parent, req);
                done.wait().await;
                let rep = slot
                    .borrow_mut()
                    .take()
                    .expect("flush fills the slot before signalling");
                return rep;
            }
        }
        let (lh, lc) = self.fault_link.get();
        let plan = self.net.plan_attempt(lh, lc);
        if !plan.delay.is_zero() {
            self.sim.sleep(plan.delay).await;
        }
        if let Some(t) = self.tracer.borrow().as_ref() {
            t.emit(
                parent,
                EventKind::RpcXmit {
                    from: self.from,
                    xid,
                },
            );
        }
        self.net
            .transmit_from(self.from.0, true, req.wire_size())
            .await;
        if plan.drop {
            // The request is eaten by the network (or a partition);
            // hang until the caller's timeout fires and retransmits.
            self.net.note_kill(lh, lc, xid);
            std::future::pending::<()>().await;
        }
        if !self.endpoint.is_alive() {
            // The request is lost; hang until the caller's timeout fires.
            std::future::pending::<()>().await;
        }
        if plan.duplicate {
            // A second copy of the same datagram arrives: same xid, so
            // the dup cache either joins the in-flight execution or
            // answers from a completed entry. Its reply is discarded —
            // the caller only waits on the primary copy.
            let ep = self.endpoint.clone();
            let net = self.net.clone();
            let from = self.from;
            let req2 = req.clone();
            self.sim.spawn(async move {
                net.transmit_from(from.0, true, req2.wire_size()).await;
                if ep.is_alive() {
                    let rep = ep.deliver(from, xid, parent, req2).await;
                    net.transmit_from(from.0, false, rep.wire_size()).await;
                }
            });
        }
        let rep = self.endpoint.deliver(self.from, xid, parent, req).await;
        if plan.reply_loss || self.net.reply_lost(lh, lc, xid) {
            // The server executed the call but its reply never makes it
            // back: the retransmission must be absorbed by the dup
            // cache (or, if that entry is gone, re-executed — the
            // hazard the clients' outcome mapping covers).
            self.net.note_kill(lh, lc, xid);
            std::future::pending::<()>().await;
        }
        self.net
            .transmit_from(self.from.0, false, rep.wire_size())
            .await;
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetParams;
    use spritely_proto::{NfsProc, NfsReply, NfsRequest};

    fn setup(handler_delay: SimDuration) -> (Sim, Caller<NfsRequest, NfsReply>) {
        let sim = Sim::new();
        let server_cpu = Resource::new(&sim, "scpu", 1);
        let client_cpu = Resource::new(&sim, "ccpu", 1);
        let net = Network::new(
            &sim,
            "net",
            NetParams {
                latency: SimDuration::from_micros(500),
                bandwidth: 1_250_000,
                switched: false,
            },
        );
        let s2 = sim.clone();
        let handler: HandlerFn<NfsRequest, NfsReply> = Rc::new(move |_from, _ctx, _req| {
            let s = s2.clone();
            Box::pin(async move {
                if !handler_delay.is_zero() {
                    s.sleep(handler_delay).await;
                }
                NfsReply::Ok
            })
        });
        let ep = Endpoint::new(
            &sim,
            "nfsd",
            server_cpu,
            EndpointParams {
                threads: 2,
                cpu_per_call: SimDuration::from_micros(400),
                cpu_per_kb: SimDuration::ZERO,
                dup_retention: SimDuration::from_secs(60),
            },
            OpCounter::new(),
            handler,
        );
        let caller = Caller::new(
            &sim,
            net,
            ep,
            ClientId(1),
            client_cpu,
            CallerParams {
                timeout: SimDuration::from_millis(100),
                max_retries: 3,
                cpu_per_call: SimDuration::from_micros(300),
            },
        );
        (sim, caller)
    }

    #[test]
    fn call_round_trip_succeeds_and_counts() {
        let (sim, caller) = setup(SimDuration::ZERO);
        let ep_counter = caller.endpoint.counter().clone();
        let out = sim.block_on(async move { caller.call(NfsRequest::Null).await });
        assert_eq!(out, Ok(NfsReply::Ok));
        assert_eq!(ep_counter.get(NfsProc::Null), 1);
    }

    #[test]
    fn slow_handler_triggers_retransmit_but_executes_once() {
        let (sim, caller) = setup(SimDuration::from_millis(250));
        let ep = caller.endpoint.clone();
        let out = sim.block_on(async move {
            let r = caller.call(NfsRequest::Null).await;
            (r, caller.retransmits())
        });
        assert_eq!(out.0, Ok(NfsReply::Ok));
        assert!(out.1 >= 1, "expected at least one retransmit");
        assert_eq!(ep.executions(), 1, "dup cache must suppress re-execution");
        assert_eq!(ep.counter().total(), 1);
    }

    #[test]
    fn dead_endpoint_times_out() {
        let (sim, caller) = setup(SimDuration::ZERO);
        caller.endpoint.set_alive(false);
        let out = sim.block_on(async move { caller.call(NfsRequest::Null).await });
        assert_eq!(out, Err(RpcError::Timeout));
        // 4 attempts x 100 ms, plus transmit times.
        assert!(sim.now().as_micros() >= 400_000);
    }

    #[test]
    fn concurrent_calls_use_thread_pool() {
        let (sim, caller) = setup(SimDuration::from_millis(10));
        let caller = Rc::new(caller);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Rc::clone(&caller);
            handles.push(sim.spawn(async move { c.call(NfsRequest::Null).await }));
        }
        sim.run_to_quiescence();
        for h in handles {
            assert_eq!(h.try_take().expect("finished"), Ok(NfsReply::Ok));
        }
        // 2 threads, 4 requests of 10 ms each → handler phase spans ≥20 ms.
        assert!(sim.now().as_micros() >= 20_000);
        assert_eq!(caller.endpoint.executions(), 4);
    }

    #[test]
    fn per_call_cpu_is_charged_on_server() {
        let (sim, caller) = setup(SimDuration::ZERO);
        let cpu_busy_before = caller.endpoint.inner.cpu.busy_permit_micros();
        let ep = caller.endpoint.clone();
        sim.block_on(async move {
            caller.call(NfsRequest::Null).await.unwrap();
        });
        let busy = ep.inner.cpu.busy_permit_micros() - cpu_busy_before;
        assert_eq!(busy, 400);
    }

    #[test]
    fn xids_distinguish_calls() {
        let (sim, caller) = setup(SimDuration::ZERO);
        let ep = caller.endpoint.clone();
        sim.block_on(async move {
            caller.call(NfsRequest::Null).await.unwrap();
            caller.call(NfsRequest::Null).await.unwrap();
        });
        assert_eq!(ep.executions(), 2);
    }

    #[test]
    fn batching_shares_the_wire_and_preserves_accounting() {
        let (sim, caller) = setup(SimDuration::ZERO);
        let mut t = TransportParams::pipelined();
        t.max_batch = 4;
        t.batch_window = SimDuration::from_millis(5);
        t.switched = false;
        caller.set_transport(t);
        let stats = TransportStats::new();
        caller.set_transport_stats(stats.clone());
        let net = caller.net.clone();
        let ep = caller.endpoint.clone();
        let caller = Rc::new(caller);
        for _ in 0..4 {
            let c = Rc::clone(&caller);
            sim.spawn(async move {
                c.call_bg(0, NfsRequest::Null).await.unwrap();
            });
        }
        sim.run_to_quiescence();
        // Nagle: the first call goes out alone; the three that arrive
        // while it is in flight coalesce into one ack-clocked compound.
        assert_eq!(net.messages(), 4, "two compound exchanges, not eight");
        assert_eq!(ep.executions(), 4);
        assert_eq!(ep.counter().get(NfsProc::Null), 4);
        assert_eq!(
            ep.counter().get(NfsProc::Compound),
            0,
            "the compound wrapper is never counted as an executed procedure"
        );
        assert_eq!(stats.batch_sizes.count(), 2);
        assert_eq!(stats.batch_sizes.max(), 3);
        assert_eq!(stats.saved.get(NfsProc::Null), 2);
    }

    #[test]
    fn underfull_batch_flushes_on_the_window_deadline() {
        // A 10 ms handler holds the first batch's ack well past the 2 ms
        // window: the two followers must not wait for the ack clock.
        let (sim, caller) = setup(SimDuration::from_millis(10));
        let mut t = TransportParams::pipelined();
        t.max_batch = 8;
        t.batch_window = SimDuration::from_millis(2);
        t.switched = false;
        caller.set_transport(t);
        let net = caller.net.clone();
        let ep = caller.endpoint.clone();
        let caller = Rc::new(caller);
        for _ in 0..3 {
            let c = Rc::clone(&caller);
            sim.spawn(async move {
                c.call_bg(0, NfsRequest::Null).await.unwrap();
            });
        }
        // By 5 ms the window (armed ~0.6 ms, 2 ms wide) has pushed the
        // follower compound onto the wire even though the first ack is
        // still 5 ms away — two requests sent, no replies yet.
        let sim2 = sim.clone();
        let h = sim.spawn(async move {
            sim2.sleep(SimDuration::from_millis(5)).await;
        });
        sim.run_until(h);
        assert_eq!(
            net.messages(),
            2,
            "window deadline flushed the followers before the first ack"
        );
        sim.run_to_quiescence();
        assert_eq!(net.messages(), 4, "immediate single + window-flushed pair");
        assert_eq!(ep.executions(), 3);
    }

    #[test]
    fn retransmitted_batch_executes_each_call_once() {
        // Handler takes 150 ms against a 100 ms timeout: every call in the
        // batch times out and re-enqueues with its original xid. The dup
        // cache must absorb the retransmissions.
        let (sim, caller) = setup(SimDuration::from_millis(150));
        let mut t = TransportParams::paper();
        t.max_batch = 4;
        t.batch_window = SimDuration::from_millis(2);
        caller.set_transport(t);
        let ep = caller.endpoint.clone();
        let caller = Rc::new(caller);
        let ok = Rc::new(Cell::new(0u32));
        for _ in 0..4 {
            let c = Rc::clone(&caller);
            let ok = Rc::clone(&ok);
            sim.spawn(async move {
                assert_eq!(c.call_bg(0, NfsRequest::Null).await, Ok(NfsReply::Ok));
                ok.set(ok.get() + 1);
            });
        }
        sim.run_to_quiescence();
        assert_eq!(ok.get(), 4);
        assert!(caller.retransmits() >= 1, "the slow batch must retransmit");
        assert_eq!(
            ep.executions(),
            4,
            "dup cache suppresses batch re-execution"
        );
        assert_eq!(ep.counter().get(NfsProc::Null), 4);
    }

    #[test]
    fn exponential_backoff_shrinks_retransmit_storms() {
        let run = |t: TransportParams| {
            let (sim, caller) = setup(SimDuration::from_millis(350));
            caller.set_transport(t);
            sim.block_on(async move {
                assert_eq!(caller.call(NfsRequest::Null).await, Ok(NfsReply::Ok));
                caller.retransmits()
            })
        };
        let fixed = run(TransportParams::paper());
        let mut backed_off = TransportParams::paper();
        backed_off.backoff_factor = 2.0;
        backed_off.backoff_jitter = 0.25;
        let backoff = run(backed_off);
        assert!(fixed >= 3, "the fixed timeout retransmits in lockstep");
        assert!(
            backoff < fixed,
            "backoff must shrink the storm ({backoff} vs {fixed})"
        );
    }

    #[test]
    fn dup_cache_purges_on_time_cadence() {
        // Regression: the old purge fired only when `dup.len()` was an
        // exact multiple of 1024, which a workload could hop over
        // forever. The purge now runs on a sim-time cadence.
        let (sim, caller) = setup(SimDuration::ZERO);
        let ep = caller.endpoint.clone();
        sim.block_on(async move {
            caller.call(NfsRequest::Null).await.unwrap();
            assert_eq!(caller.endpoint.dup_entries(), 1);
            // Well past the 60 s retention: the next completed call
            // sweeps the stale entry and leaves only itself.
            caller.sim.sleep(SimDuration::from_secs(61)).await;
            caller.call(NfsRequest::Null).await.unwrap();
            assert_eq!(caller.endpoint.dup_entries(), 1, "stale entry swept");
        });
        assert_eq!(ep.executions(), 2);
    }

    #[test]
    fn clear_dup_cache_forgets_completed_entries() {
        let (sim, caller) = setup(SimDuration::ZERO);
        let ep = caller.endpoint.clone();
        sim.block_on(async move {
            caller.call(NfsRequest::Null).await.unwrap();
        });
        assert_eq!(ep.dup_entries(), 1);
        ep.clear_dup_cache();
        assert_eq!(ep.dup_entries(), 0);
    }

    #[test]
    #[should_panic(expected = "dup_retention")]
    fn retention_shorter_than_ladder_is_rejected() {
        let sim = Sim::new();
        let cpu = Resource::new(&sim, "cpu", 1);
        let net = Network::new(
            &sim,
            "net",
            NetParams {
                latency: SimDuration::from_micros(500),
                bandwidth: 1_250_000,
                switched: false,
            },
        );
        let handler: HandlerFn<NfsRequest, NfsReply> =
            Rc::new(|_, _, _| Box::pin(async { NfsReply::Ok }));
        let ep = Endpoint::new(
            &sim,
            "nfsd",
            cpu.clone(),
            EndpointParams {
                // 4 s retention < the 5 s ladder (1 s × 5 attempts):
                // a retransmission could outlive the dup-cache entry
                // that protects it from double execution.
                dup_retention: SimDuration::from_secs(4),
                ..EndpointParams::default()
            },
            OpCounter::new(),
            handler,
        );
        let _ = Caller::new(&sim, net, ep, ClientId(1), cpu, CallerParams::default());
    }

    #[test]
    fn scripted_reply_loss_is_absorbed_by_the_dup_cache() {
        let (sim, caller) = setup(SimDuration::ZERO);
        caller.net.lose_next_reply(1, false);
        let ep = caller.endpoint.clone();
        let stats = caller.net.fault_stats();
        let out = sim.block_on(async move {
            let r = caller.call(NfsRequest::Null).await;
            (r, caller.retransmits())
        });
        assert_eq!(out.0, Ok(NfsReply::Ok));
        assert!(out.1 >= 1, "the lost reply forces a retransmission");
        assert_eq!(ep.executions(), 1, "server executed exactly once");
        assert_eq!(ep.dup_hits(), 1, "retransmit answered from the dup cache");
        assert_eq!(stats.killed_attempts(), 1);
        assert_eq!(stats.retransmit_absorbed(), 1);
        assert_eq!(stats.outstanding_kills(), 0);
    }

    #[test]
    fn random_drops_are_absorbed_by_retransmission() {
        let (sim, caller) = setup(SimDuration::ZERO);
        caller.net.set_faults(crate::FaultParams {
            drop: 0.3,
            seed: 7,
            ..crate::FaultParams::default()
        });
        let ep = caller.endpoint.clone();
        let stats = caller.net.fault_stats();
        let caller = Rc::new(caller);
        let c2 = Rc::clone(&caller);
        sim.block_on(async move {
            for _ in 0..50 {
                // A call can exhaust its whole ladder against a 30%
                // drop rate; the application retries with a fresh xid,
                // exactly as a real NFS client's hard-mount loop would.
                while c2.call(NfsRequest::Null).await.is_err() {}
            }
        });
        assert_eq!(
            ep.executions(),
            50,
            "each completed call executed exactly once (drops kill the \
             request before delivery, so abandoned xids never executed)"
        );
        assert!(stats.drops() > 0, "a 30% drop rate must fire in 50 calls");
        assert_eq!(
            stats.killed_attempts(),
            stats.retransmit_absorbed() + stats.outstanding_kills(),
            "kill conservation"
        );
    }

    #[test]
    fn duplicated_requests_hit_the_dup_cache_not_the_handler() {
        let (sim, caller) = setup(SimDuration::ZERO);
        caller.net.set_faults(crate::FaultParams {
            duplicate: 1.0,
            seed: 3,
            ..crate::FaultParams::default()
        });
        let ep = caller.endpoint.clone();
        let stats = caller.net.fault_stats();
        sim.block_on(async move {
            for _ in 0..10 {
                assert_eq!(caller.call(NfsRequest::Null).await, Ok(NfsReply::Ok));
            }
        });
        sim.run_to_quiescence();
        assert_eq!(ep.executions(), 10, "duplicates never re-execute");
        assert_eq!(stats.dups(), 10);
        assert_eq!(
            ep.dup_hits() + ep.dup_joins(),
            10,
            "every duplicate was answered by the dup cache"
        );
    }

    #[test]
    fn default_fault_params_are_wire_inert() {
        // Installing the all-zero fault layer must leave traffic and
        // timing bit-identical to never installing it.
        let run = |configure: bool| {
            let (sim, caller) = setup(SimDuration::ZERO);
            if configure {
                caller.net.set_faults(crate::FaultParams::default());
            }
            let net = caller.net.clone();
            sim.block_on(async move {
                for _ in 0..5 {
                    caller.call(NfsRequest::Null).await.unwrap();
                }
            });
            (sim.now().as_micros(), net.messages(), net.bytes())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn partitioned_host_times_out_until_heal() {
        let (sim, caller) = setup(SimDuration::ZERO);
        caller.net.partition(
            1,
            crate::PartitionDir::Both,
            SimTime::ZERO + SimDuration::from_secs(3600),
        );
        let net = caller.net.clone();
        let out = sim.block_on(async move {
            let r1 = caller.call(NfsRequest::Null).await;
            net.heal(1);
            let r2 = caller.call(NfsRequest::Null).await;
            (r1, r2)
        });
        assert_eq!(out.0, Err(RpcError::Timeout));
        assert_eq!(out.1, Ok(NfsReply::Ok));
    }

    #[test]
    fn dropped_compound_retransmits_as_a_unit() {
        // The batcher sends one datagram per flush; a drop kills every
        // member, and each re-enqueues on its own timeout with its
        // original xid, so nothing double-executes.
        let (sim, caller) = setup(SimDuration::ZERO);
        let mut t = TransportParams::paper();
        t.max_batch = 4;
        t.batch_window = SimDuration::from_millis(2);
        caller.set_transport(t);
        // Drop everything briefly, then let retransmissions through.
        caller.net.set_faults(crate::FaultParams {
            drop: 1.0,
            seed: 11,
            ..crate::FaultParams::default()
        });
        let net = caller.net.clone();
        let stats = net.fault_stats();
        let ep = caller.endpoint.clone();
        let caller = Rc::new(caller);
        let ok = Rc::new(Cell::new(0u32));
        for _ in 0..4 {
            let c = Rc::clone(&caller);
            let ok = Rc::clone(&ok);
            sim.spawn(async move {
                assert_eq!(c.call_bg(0, NfsRequest::Null).await, Ok(NfsReply::Ok));
                ok.set(ok.get() + 1);
            });
        }
        let sim2 = sim.clone();
        let net2 = net.clone();
        let h = sim.spawn(async move {
            sim2.sleep(SimDuration::from_millis(50)).await;
            net2.set_faults(crate::FaultParams::default());
        });
        sim.run_until(h);
        sim.run_to_quiescence();
        assert_eq!(ok.get(), 4, "every batched call eventually completed");
        assert_eq!(ep.executions(), 4, "each member executed exactly once");
        assert!(stats.drops() >= 1, "the first flush was dropped");
        assert_eq!(stats.outstanding_kills(), 0);
    }

    #[test]
    fn blocking_requests_never_occupy_the_last_thread() {
        // §3.2 reserved thread: opens stacking behind a dirty file's
        // lock must not starve the callback-induced write-back that
        // would release them. Model the stall with a handler that parks
        // every Open on an event; a Write delivered while *three* opens
        // are stalled (against 2 threads) must still execute.
        let sim = Sim::new();
        let cpu = Resource::new(&sim, "cpu", 1);
        let gate = Event::new();
        let g2 = gate.clone();
        let handler: HandlerFn<NfsRequest, NfsReply> = Rc::new(move |_from, _ctx, req| {
            let gate = g2.clone();
            Box::pin(async move {
                if matches!(req, NfsRequest::Open { .. }) {
                    gate.wait().await;
                }
                NfsReply::Ok
            })
        });
        let ep = Endpoint::new(
            &sim,
            "nfsd",
            cpu,
            EndpointParams {
                threads: 2,
                cpu_per_call: SimDuration::ZERO,
                cpu_per_kb: SimDuration::ZERO,
                dup_retention: SimDuration::from_secs(60),
            },
            OpCounter::new(),
            handler,
        );
        let fh = spritely_proto::FileHandle::new(1, 1, 0);
        let from = ClientId(1);
        let mut opens = Vec::new();
        for xid in 0..3 {
            let ep = ep.clone();
            opens.push(sim.spawn(async move {
                ep.deliver(
                    from,
                    xid,
                    0,
                    NfsRequest::Open {
                        fh,
                        write: false,
                        client: from,
                    },
                )
                .await
            }));
        }
        let ep2 = ep.clone();
        let write =
            sim.spawn(async move { ep2.deliver(from, 100, 0, NfsRequest::GetAttr { fh }).await });
        sim.run_to_quiescence();
        assert_eq!(
            write.try_take().expect("write-back class traffic served"),
            NfsReply::Ok,
            "the reserved thread served the non-blocking request"
        );
        assert!(
            opens.iter().all(|h| h.try_take().is_none()),
            "opens are still parked"
        );
        gate.set();
        sim.run_to_quiescence();
        for h in opens {
            assert_eq!(h.try_take().expect("open completed"), NfsReply::Ok);
        }
    }

    #[test]
    fn paper_transport_is_rpc_for_rpc_identical() {
        // Explicitly configuring the paper transport must leave the wire
        // traffic and timing bit-identical to never touching it.
        let run = |configure: bool| {
            let (sim, caller) = setup(SimDuration::ZERO);
            if configure {
                caller.set_transport(TransportParams::paper());
            }
            let net = caller.net.clone();
            sim.block_on(async move {
                for _ in 0..5 {
                    caller.call(NfsRequest::Null).await.unwrap();
                }
            });
            (sim.now().as_micros(), net.messages(), net.bytes())
        };
        assert_eq!(run(false), run(true));
    }
}
