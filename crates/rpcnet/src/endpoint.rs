//! RPC endpoints (server side) and callers (client side).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use spritely_metrics::{LatencyStats, OpCounter, RateSeries};
use spritely_proto::ClientId;
use spritely_sim::{Event, Resource, Sim, SimDuration, SimTime};
use spritely_trace::{EventKind, Tracer};

use crate::network::Network;
use crate::{Proc, ReplyStatus, Wire};

/// A boxed async request handler. The `u64` is the causal trace context
/// (the handler-begin event's sequence number, 0 when untraced) for the
/// handler to parent its own trace events under.
pub type HandlerFn<Req, Rep> = Rc<dyn Fn(ClientId, u64, Req) -> Pin<Box<dyn Future<Output = Rep>>>>;

/// Server-side endpoint parameters.
#[derive(Debug, Clone, Copy)]
pub struct EndpointParams {
    /// Number of service threads. An SNFS server must have at least two so
    /// that write-backs triggered by a callback can be serviced while the
    /// callback-issuing thread waits (paper §3.2).
    pub threads: usize,
    /// Host CPU charged per call (RPC decode, dispatch, encode).
    pub cpu_per_call: SimDuration,
    /// Additional host CPU charged per KB of request payload.
    pub cpu_per_kb: SimDuration,
    /// How long completed entries stay in the duplicate-request cache.
    pub dup_retention: SimDuration,
}

impl Default for EndpointParams {
    fn default() -> Self {
        EndpointParams {
            threads: 4,
            cpu_per_call: SimDuration::from_micros(400),
            cpu_per_kb: SimDuration::from_micros(100),
            dup_retention: SimDuration::from_secs(60),
        }
    }
}

enum DupState<Rep> {
    InProgress(Event),
    Done(Rep, SimTime),
}

struct EndpointInner<Req, Rep> {
    sim: Sim,
    threads: Resource,
    cpu: Resource,
    params: EndpointParams,
    handler: HandlerFn<Req, Rep>,
    dup: RefCell<HashMap<(ClientId, u64), DupState<Rep>>>,
    counter: OpCounter,
    rates: RefCell<Option<RateSeries>>,
    tracer: RefCell<Option<Tracer>>,
    alive: Cell<bool>,
    executions: Cell<u64>,
}

/// A server-side RPC endpoint: thread pool + dup cache + accounting around
/// a user-supplied async handler.
///
/// Cheap to clone. Executions are spawned as independent tasks, so a caller
/// that times out and abandons its attempt does not abort server-side work
/// (the retransmission will find the duplicate-cache entry instead).
pub struct Endpoint<Req, Rep> {
    inner: Rc<EndpointInner<Req, Rep>>,
}

impl<Req, Rep> Clone for Endpoint<Req, Rep> {
    fn clone(&self) -> Self {
        Endpoint {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<Req, Rep> Endpoint<Req, Rep>
where
    Req: Proc + Wire + 'static,
    Rep: Clone + ReplyStatus + 'static,
{
    /// Creates an endpoint.
    ///
    /// `cpu` is the host CPU resource shared with everything else on that
    /// host; `counter` receives one record per *executed* call (duplicates
    /// suppressed by the cache are not re-counted).
    ///
    /// # Panics
    ///
    /// Panics if `params.threads` is zero.
    pub fn new(
        sim: &Sim,
        name: impl Into<String>,
        cpu: Resource,
        params: EndpointParams,
        counter: OpCounter,
        handler: HandlerFn<Req, Rep>,
    ) -> Self {
        assert!(params.threads > 0, "endpoint needs at least one thread");
        Endpoint {
            inner: Rc::new(EndpointInner {
                sim: sim.clone(),
                threads: Resource::new(sim, name, params.threads),
                cpu,
                params,
                handler,
                dup: RefCell::new(HashMap::new()),
                counter,
                rates: RefCell::new(None),
                tracer: RefCell::new(None),
                alive: Cell::new(true),
                executions: Cell::new(0),
            }),
        }
    }

    /// Attaches a rate series that will record every executed call.
    pub fn set_rate_series(&self, rates: RateSeries) {
        *self.inner.rates.borrow_mut() = Some(rates);
    }

    /// Attaches a tracer: every handler execution is recorded as a
    /// `handler_begin`/`handler_end` span, causally linked to the
    /// originating `rpc_call` event.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.inner.tracer.borrow_mut() = Some(tracer);
    }

    /// The per-procedure counter.
    pub fn counter(&self) -> &OpCounter {
        &self.inner.counter
    }

    /// The service thread pool (for utilization reporting).
    pub fn threads(&self) -> &Resource {
        &self.inner.threads
    }

    /// Number of handler executions (excludes dup-cache hits).
    pub fn executions(&self) -> u64 {
        self.inner.executions.get()
    }

    /// Marks the endpoint up or down. Calls to a down endpoint hang until
    /// the caller's timeout fires.
    pub fn set_alive(&self, alive: bool) {
        self.inner.alive.set(alive);
    }

    /// Returns true if the endpoint accepts requests.
    pub fn is_alive(&self) -> bool {
        self.inner.alive.get()
    }

    /// Delivers a request, executing it once per `(from, xid)` and serving
    /// retransmissions from the duplicate cache. `parent` is the trace
    /// context of the originating `rpc_call` event (0 when untraced).
    pub async fn deliver(&self, from: ClientId, xid: u64, parent: u64, req: Req) -> Rep {
        let key = (from, xid);
        let ev = {
            let mut dup = self.inner.dup.borrow_mut();
            match dup.get(&key) {
                Some(DupState::Done(rep, _)) => return rep.clone(),
                Some(DupState::InProgress(ev)) => ev.clone(),
                None => {
                    let ev = Event::new();
                    dup.insert(key, DupState::InProgress(ev.clone()));
                    drop(dup);
                    self.spawn_execution(key, from, parent, req);
                    ev
                }
            }
        };
        ev.wait().await;
        match self.inner.dup.borrow().get(&key) {
            Some(DupState::Done(rep, _)) => rep.clone(),
            _ => unreachable!("execution completed without a Done entry"),
        }
    }

    fn spawn_execution(&self, key: (ClientId, u64), from: ClientId, parent: u64, req: Req) {
        let inner = Rc::clone(&self.inner);
        let proc = req.proc_id();
        let kb = req.wire_size() as f64 / 1024.0;
        inner.sim.clone().spawn(async move {
            let thread = inner.threads.acquire().await;
            inner.counter.record(proc);
            if let Some(r) = inner.rates.borrow().as_ref() {
                r.record_at(inner.sim.now(), proc);
            }
            let ctx = match inner.tracer.borrow().as_ref() {
                Some(t) => t.emit(
                    parent,
                    EventKind::HandlerBegin {
                        from,
                        xid: key.1,
                        proc,
                    },
                ),
                None => 0,
            };
            let cpu_time = inner.params.cpu_per_call + inner.params.cpu_per_kb.mul_f64(kb);
            if !cpu_time.is_zero() {
                inner.cpu.use_for(cpu_time).await;
            }
            let rep = (inner.handler)(from, ctx, req).await;
            if let Some(t) = inner.tracer.borrow().as_ref() {
                t.emit(
                    ctx,
                    EventKind::HandlerEnd {
                        from,
                        xid: key.1,
                        proc,
                        ok: rep.trace_ok(),
                    },
                );
            }
            drop(thread);
            inner.executions.set(inner.executions.get() + 1);
            let now = inner.sim.now();
            let mut dup = inner.dup.borrow_mut();
            let prev = dup.insert(key, DupState::Done(rep, now));
            // Opportunistic pruning keeps the cache bounded on long runs.
            if dup.len().is_multiple_of(1024) {
                let horizon = now.saturating_duration_since(SimTime::ZERO);
                let _ = horizon;
                let retention = inner.params.dup_retention;
                dup.retain(|_, v| match v {
                    DupState::InProgress(_) => true,
                    DupState::Done(_, t) => now.saturating_duration_since(*t) < retention,
                });
            }
            drop(dup);
            match prev {
                Some(DupState::InProgress(ev)) => ev.set(),
                _ => unreachable!("execution finished without an InProgress entry"),
            }
        });
    }
}

/// Errors a [`Caller`] can return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply after all retransmissions.
    Timeout,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "RPC timed out after retries"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Client-side caller parameters.
#[derive(Debug, Clone, Copy)]
pub struct CallerParams {
    /// Per-attempt reply timeout.
    pub timeout: SimDuration,
    /// Retransmissions after the first attempt.
    pub max_retries: u32,
    /// Caller-host CPU charged per call (argument marshalling etc.).
    pub cpu_per_call: SimDuration,
}

impl Default for CallerParams {
    fn default() -> Self {
        CallerParams {
            timeout: SimDuration::from_secs(1),
            max_retries: 4,
            cpu_per_call: SimDuration::from_micros(300),
        }
    }
}

/// A client-side RPC caller bound to one endpoint over one network.
pub struct Caller<Req, Rep> {
    sim: Sim,
    net: Network,
    endpoint: Endpoint<Req, Rep>,
    from: ClientId,
    cpu: Resource,
    params: CallerParams,
    next_xid: Cell<u64>,
    retransmits: Cell<u64>,
    latency: RefCell<Option<LatencyStats>>,
    tracer: RefCell<Option<Tracer>>,
}

impl<Req, Rep> Clone for Caller<Req, Rep> {
    fn clone(&self) -> Self {
        Caller {
            sim: self.sim.clone(),
            net: self.net.clone(),
            endpoint: self.endpoint.clone(),
            from: self.from,
            cpu: self.cpu.clone(),
            params: self.params,
            next_xid: Cell::new(0),
            retransmits: Cell::new(0),
            latency: RefCell::new(self.latency.borrow().clone()),
            tracer: RefCell::new(self.tracer.borrow().clone()),
        }
    }
}

impl<Req, Rep> Caller<Req, Rep>
where
    Req: Proc + Wire + Clone + 'static,
    Rep: Wire + Clone + ReplyStatus + 'static,
{
    /// Creates a caller. `cpu` is the calling host's CPU; `from` identifies
    /// the calling host to the endpoint's dup cache and handler.
    pub fn new(
        sim: &Sim,
        net: Network,
        endpoint: Endpoint<Req, Rep>,
        from: ClientId,
        cpu: Resource,
        params: CallerParams,
    ) -> Self {
        Caller {
            sim: sim.clone(),
            net,
            endpoint,
            from,
            cpu,
            params,
            next_xid: Cell::new(0),
            retransmits: Cell::new(0),
            latency: RefCell::new(None),
            tracer: RefCell::new(None),
        }
    }

    /// Attaches a latency recorder; every subsequent call's end-to-end
    /// time (including queueing, retransmissions and the reply) is
    /// recorded under its procedure.
    pub fn set_latency_stats(&self, stats: LatencyStats) {
        *self.latency.borrow_mut() = Some(stats);
    }

    /// Attaches a tracer: every call is recorded as an `rpc_call` /
    /// `rpc_reply` pair keyed by xid.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.tracer.borrow_mut() = Some(tracer);
    }

    /// The caller's client id.
    pub fn client_id(&self) -> ClientId {
        self.from
    }

    /// Total retransmissions so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.get()
    }

    /// Issues one RPC: marshal, transmit, await the reply, with timeout and
    /// retransmission. At-most-once execution is guaranteed by the
    /// endpoint's duplicate cache.
    pub async fn call(&self, req: Req) -> Result<Rep, RpcError> {
        self.call_ctx(0, req).await
    }

    /// Like [`Caller::call`], but parents the `rpc_call` trace event
    /// under `parent` (a client-operation span, usually).
    pub async fn call_ctx(&self, parent: u64, req: Req) -> Result<Rep, RpcError> {
        if !self.params.cpu_per_call.is_zero() {
            self.cpu.use_for(self.params.cpu_per_call).await;
        }
        let xid = self.next_xid.get();
        self.next_xid.set(xid + 1);
        let started = self.sim.now();
        let proc = req.proc_id();
        let rpc_seq = match self.tracer.borrow().as_ref() {
            Some(t) => {
                let (offset, len) = req.trace_range();
                t.emit(
                    parent,
                    EventKind::RpcCall {
                        from: self.from,
                        xid,
                        proc,
                        fh: req.trace_fh(),
                        offset,
                        len,
                    },
                )
            }
            None => 0,
        };
        let attempts = 1 + self.params.max_retries;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retransmits.set(self.retransmits.get() + 1);
            }
            let fut = self.attempt(xid, rpc_seq, req.clone());
            match self.sim.timeout(self.params.timeout, fut).await {
                Ok(rep) => {
                    if let Some(l) = self.latency.borrow().as_ref() {
                        l.record(proc, self.sim.now().duration_since(started));
                    }
                    if let Some(t) = self.tracer.borrow().as_ref() {
                        t.emit(
                            rpc_seq,
                            EventKind::RpcReply {
                                from: self.from,
                                xid,
                                proc,
                                ok: rep.trace_ok(),
                            },
                        );
                    }
                    return Ok(rep);
                }
                Err(_) => continue,
            }
        }
        Err(RpcError::Timeout)
    }

    async fn attempt(&self, xid: u64, parent: u64, req: Req) -> Rep {
        self.net.transmit(req.wire_size()).await;
        if !self.endpoint.is_alive() {
            // The request is lost; hang until the caller's timeout fires.
            std::future::pending::<()>().await;
        }
        let rep = self.endpoint.deliver(self.from, xid, parent, req).await;
        self.net.transmit(rep.wire_size()).await;
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetParams;
    use spritely_proto::{NfsProc, NfsReply, NfsRequest};

    fn setup(handler_delay: SimDuration) -> (Sim, Caller<NfsRequest, NfsReply>) {
        let sim = Sim::new();
        let server_cpu = Resource::new(&sim, "scpu", 1);
        let client_cpu = Resource::new(&sim, "ccpu", 1);
        let net = Network::new(
            &sim,
            "net",
            NetParams {
                latency: SimDuration::from_micros(500),
                bandwidth: 1_250_000,
            },
        );
        let s2 = sim.clone();
        let handler: HandlerFn<NfsRequest, NfsReply> = Rc::new(move |_from, _ctx, _req| {
            let s = s2.clone();
            Box::pin(async move {
                if !handler_delay.is_zero() {
                    s.sleep(handler_delay).await;
                }
                NfsReply::Ok
            })
        });
        let ep = Endpoint::new(
            &sim,
            "nfsd",
            server_cpu,
            EndpointParams {
                threads: 2,
                cpu_per_call: SimDuration::from_micros(400),
                cpu_per_kb: SimDuration::ZERO,
                dup_retention: SimDuration::from_secs(60),
            },
            OpCounter::new(),
            handler,
        );
        let caller = Caller::new(
            &sim,
            net,
            ep,
            ClientId(1),
            client_cpu,
            CallerParams {
                timeout: SimDuration::from_millis(100),
                max_retries: 3,
                cpu_per_call: SimDuration::from_micros(300),
            },
        );
        (sim, caller)
    }

    #[test]
    fn call_round_trip_succeeds_and_counts() {
        let (sim, caller) = setup(SimDuration::ZERO);
        let ep_counter = caller.endpoint.counter().clone();
        let out = sim.block_on(async move { caller.call(NfsRequest::Null).await });
        assert_eq!(out, Ok(NfsReply::Ok));
        assert_eq!(ep_counter.get(NfsProc::Null), 1);
    }

    #[test]
    fn slow_handler_triggers_retransmit_but_executes_once() {
        let (sim, caller) = setup(SimDuration::from_millis(250));
        let ep = caller.endpoint.clone();
        let out = sim.block_on(async move {
            let r = caller.call(NfsRequest::Null).await;
            (r, caller.retransmits())
        });
        assert_eq!(out.0, Ok(NfsReply::Ok));
        assert!(out.1 >= 1, "expected at least one retransmit");
        assert_eq!(ep.executions(), 1, "dup cache must suppress re-execution");
        assert_eq!(ep.counter().total(), 1);
    }

    #[test]
    fn dead_endpoint_times_out() {
        let (sim, caller) = setup(SimDuration::ZERO);
        caller.endpoint.set_alive(false);
        let out = sim.block_on(async move { caller.call(NfsRequest::Null).await });
        assert_eq!(out, Err(RpcError::Timeout));
        // 4 attempts x 100 ms, plus transmit times.
        assert!(sim.now().as_micros() >= 400_000);
    }

    #[test]
    fn concurrent_calls_use_thread_pool() {
        let (sim, caller) = setup(SimDuration::from_millis(10));
        let caller = Rc::new(caller);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Rc::clone(&caller);
            handles.push(sim.spawn(async move { c.call(NfsRequest::Null).await }));
        }
        sim.run_to_quiescence();
        for h in handles {
            assert_eq!(h.try_take().expect("finished"), Ok(NfsReply::Ok));
        }
        // 2 threads, 4 requests of 10 ms each → handler phase spans ≥20 ms.
        assert!(sim.now().as_micros() >= 20_000);
        assert_eq!(caller.endpoint.executions(), 4);
    }

    #[test]
    fn per_call_cpu_is_charged_on_server() {
        let (sim, caller) = setup(SimDuration::ZERO);
        let cpu_busy_before = caller.endpoint.inner.cpu.busy_permit_micros();
        let ep = caller.endpoint.clone();
        sim.block_on(async move {
            caller.call(NfsRequest::Null).await.unwrap();
        });
        let busy = ep.inner.cpu.busy_permit_micros() - cpu_busy_before;
        assert_eq!(busy, 400);
    }

    #[test]
    fn xids_distinguish_calls() {
        let (sim, caller) = setup(SimDuration::ZERO);
        let ep = caller.endpoint.clone();
        sim.block_on(async move {
            caller.call(NfsRequest::Null).await.unwrap();
            caller.call(NfsRequest::Null).await.unwrap();
        });
        assert_eq!(ep.executions(), 2);
    }
}
