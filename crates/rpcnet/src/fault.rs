//! Deterministic network fault injection.
//!
//! The paper's consistency argument (§2.4/§3.2) leans on RPC machinery —
//! retransmission against a duplicate-request cache, callback failure
//! handling, reboot epochs — that a loss-free network never exercises.
//! This module adds a seeded fault layer to [`Network`](crate::Network):
//! per-message drop / duplicate / extra-delay decisions drawn from a
//! dedicated [`SimRng`] stream, a reply-loss mode that discards the
//! response *after* the server has executed (the case that pushes every
//! non-idempotent procedure through the dup cache), and scripted
//! per-host partitions.
//!
//! The default ([`FaultParams::default`]) is provably inert: no fault
//! state is ever installed, the paper-mode wire path makes zero extra
//! RNG draws and zero extra awaits, and every `table_5_*` artifact stays
//! byte-identical (pinned by `tests/paper_baselines.rs`).

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

use spritely_sim::{SimDuration, SimRng, SimTime};

/// Seeded fault-injection parameters. All rates are per-message
/// probabilities in `[0, 1]`; the all-zero default injects nothing.
#[derive(Debug, Clone, Copy)]
pub struct FaultParams {
    /// Probability a request message is lost before delivery (the server
    /// never sees it; the caller's timeout fires and it retransmits).
    pub drop: f64,
    /// Probability a request message is delivered twice. The duplicate
    /// carries the same xid, so the endpoint's duplicate cache must
    /// absorb it without a second execution.
    pub duplicate: f64,
    /// Probability a message is held up by extra network delay (drawn
    /// uniformly in `[0, max_delay]`) before transmission.
    pub delay: f64,
    /// Upper bound of the injected extra delay.
    pub max_delay: SimDuration,
    /// Probability the *reply* is lost after the server has executed the
    /// request. The caller retransmits; only the dup cache stands
    /// between a non-idempotent procedure and double execution.
    pub reply_loss: f64,
    /// Seed of the dedicated fault RNG stream. Workload streams are
    /// untouched, so a faulted run performs the same logical operations
    /// as a fault-free run of the same workload seed.
    pub seed: u64,
}

impl Default for FaultParams {
    fn default() -> Self {
        FaultParams {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay: SimDuration::ZERO,
            reply_loss: 0.0,
            seed: 0,
        }
    }
}

impl FaultParams {
    /// True when any random fault can fire.
    pub fn any(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.delay > 0.0 || self.reply_loss > 0.0
    }

    /// The chaos-harness preset: 5% request loss, 3% duplication, 5%
    /// extra delay up to 20 ms, 2% reply loss.
    pub fn chaos(seed: u64) -> Self {
        FaultParams {
            drop: 0.05,
            duplicate: 0.03,
            delay: 0.05,
            max_delay: SimDuration::from_millis(20),
            reply_loss: 0.02,
            seed,
        }
    }
}

/// Which direction of a host's traffic a scripted partition cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionDir {
    /// Messages destined *to* the host are lost.
    Inbound,
    /// Messages originating *at* the host are lost.
    Outbound,
    /// Both directions.
    Both,
}

/// Shared fault-injection counters (cheap to clone; clones share state).
///
/// The conservation story: every fault that kills an RPC attempt
/// (`drops`, `reply_losses`, `partition_drops`) records a *kill* against
/// that call's `(link, xid)`. When the call eventually completes — a
/// retransmission got through — its kills move to `retransmit_absorbed`.
/// Kills still in the map belong to calls that never completed (the
/// caller gave up, e.g. during a partition). So at quiescence:
/// `killed_attempts == retransmit_absorbed + outstanding_kills`.
#[derive(Clone, Default)]
pub struct FaultStats {
    inner: Rc<FaultStatsInner>,
}

#[derive(Default)]
struct FaultStatsInner {
    drops: Cell<u64>,
    dups: Cell<u64>,
    delays: Cell<u64>,
    reply_losses: Cell<u64>,
    partition_drops: Cell<u64>,
    killed_attempts: Cell<u64>,
    retransmit_absorbed: Cell<u64>,
    kills: std::cell::RefCell<HashMap<(u32, bool, u64), u64>>,
}

impl FaultStats {
    /// Requests dropped by the random fault stream.
    pub fn drops(&self) -> u64 {
        self.inner.drops.get()
    }

    /// Requests delivered twice.
    pub fn dups(&self) -> u64 {
        self.inner.dups.get()
    }

    /// Messages held up by injected delay.
    pub fn delays(&self) -> u64 {
        self.inner.delays.get()
    }

    /// Replies lost after the server executed.
    pub fn reply_losses(&self) -> u64 {
        self.inner.reply_losses.get()
    }

    /// Messages lost to a scripted partition.
    pub fn partition_drops(&self) -> u64 {
        self.inner.partition_drops.get()
    }

    /// RPC attempts killed by any fault.
    pub fn killed_attempts(&self) -> u64 {
        self.inner.killed_attempts.get()
    }

    /// Kills belonging to calls that later completed via retransmission.
    pub fn retransmit_absorbed(&self) -> u64 {
        self.inner.retransmit_absorbed.get()
    }

    /// Kills belonging to calls that never completed (callers that gave
    /// up, typically during a partition).
    pub fn outstanding_kills(&self) -> u64 {
        self.inner.kills.borrow().values().sum()
    }

    pub(crate) fn note_drop(&self) {
        self.inner.drops.set(self.inner.drops.get() + 1);
    }

    pub(crate) fn note_dup(&self) {
        self.inner.dups.set(self.inner.dups.get() + 1);
    }

    pub(crate) fn note_delay(&self) {
        self.inner.delays.set(self.inner.delays.get() + 1);
    }

    pub(crate) fn note_reply_loss(&self) {
        self.inner
            .reply_losses
            .set(self.inner.reply_losses.get() + 1);
    }

    pub(crate) fn note_partition_drop(&self) {
        self.inner
            .partition_drops
            .set(self.inner.partition_drops.get() + 1);
    }

    pub(crate) fn kill(&self, host: u32, to_client: bool, xid: u64) {
        self.inner
            .killed_attempts
            .set(self.inner.killed_attempts.get() + 1);
        *self
            .inner
            .kills
            .borrow_mut()
            .entry((host, to_client, xid))
            .or_insert(0) += 1;
    }

    pub(crate) fn absorb(&self, host: u32, to_client: bool, xid: u64) {
        if let Some(n) = self
            .inner
            .kills
            .borrow_mut()
            .remove(&(host, to_client, xid))
        {
            self.inner
                .retransmit_absorbed
                .set(self.inner.retransmit_absorbed.get() + n);
        }
    }
}

/// The fault verdict for one RPC attempt, drawn once per message
/// exchange by [`Network::plan_attempt`](crate::Network::plan_attempt).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Lose the request before delivery (the server never executes).
    pub drop: bool,
    /// The drop came from a scripted partition, not the random stream.
    pub partition: bool,
    /// Deliver the request a second time with the same xid.
    pub duplicate: bool,
    /// Extra network delay charged before the request transmits.
    pub delay: SimDuration,
    /// Execute server-side, then lose the reply.
    pub reply_loss: bool,
}

/// One scripted partition window.
struct PartitionWindow {
    host: u32,
    dir: PartitionDir,
    until: SimTime,
}

/// Per-network fault state: parameters, the dedicated RNG stream, the
/// partition schedule, and the stats. Lives inside `Network` and is only
/// installed once faults or partitions are configured — paper-mode runs
/// never allocate it.
pub(crate) struct FaultState {
    params: FaultParams,
    rng: SimRng,
    pub(crate) stats: FaultStats,
    partitions: Vec<PartitionWindow>,
    /// Scripted one-shot reply losses, keyed by fault link. Consumed in
    /// FIFO order by the next matching reply. Used by targeted
    /// regression tests that must lose exactly one reply.
    scripted_reply_losses: Vec<(u32, bool)>,
}

impl FaultState {
    pub(crate) fn new(params: FaultParams) -> Self {
        FaultState {
            // Fork so the fault stream is decoupled from any other use
            // of the same seed value elsewhere in the simulation.
            rng: SimRng::new(params.seed).fork(),
            params,
            stats: FaultStats::default(),
            partitions: Vec::new(),
            scripted_reply_losses: Vec::new(),
        }
    }

    pub(crate) fn set_params(&mut self, params: FaultParams) {
        self.params = params;
        self.rng = SimRng::new(params.seed).fork();
    }

    pub(crate) fn add_partition(&mut self, host: u32, dir: PartitionDir, until: SimTime) {
        self.partitions.push(PartitionWindow { host, dir, until });
    }

    pub(crate) fn heal(&mut self, host: u32) {
        self.partitions.retain(|w| w.host != host);
    }

    pub(crate) fn script_reply_loss(&mut self, host: u32, to_client: bool) {
        self.scripted_reply_losses.push((host, to_client));
    }

    /// True if a live partition window cuts `host`'s traffic in the
    /// given direction (`outbound` = the message originates at `host`).
    fn leg_blocked(&mut self, host: u32, outbound: bool, now: SimTime) -> bool {
        self.partitions.retain(|w| w.until > now);
        self.partitions.iter().any(|w| {
            w.host == host
                && match w.dir {
                    PartitionDir::Both => true,
                    PartitionDir::Outbound => outbound,
                    PartitionDir::Inbound => !outbound,
                }
        })
    }

    /// Draws the fault verdict for one attempt on the `(host,
    /// to_client)` link. The request leg travels outbound from `host`
    /// for ordinary calls and inbound to `host` for server→client
    /// callbacks.
    pub(crate) fn plan_attempt(&mut self, host: u32, to_client: bool, now: SimTime) -> FaultPlan {
        if self.leg_blocked(host, !to_client, now) {
            self.stats.note_partition_drop();
            return FaultPlan {
                drop: true,
                partition: true,
                ..FaultPlan::default()
            };
        }
        if !self.params.any() {
            return FaultPlan::default();
        }
        let p = self.params;
        if p.drop > 0.0 && self.rng.f64() < p.drop {
            self.stats.note_drop();
            return FaultPlan {
                drop: true,
                ..FaultPlan::default()
            };
        }
        let mut plan = FaultPlan::default();
        if p.duplicate > 0.0 && self.rng.f64() < p.duplicate {
            plan.duplicate = true;
            self.stats.note_dup();
        }
        if p.delay > 0.0 && self.rng.f64() < p.delay {
            plan.delay = self.rng.duration_uniform(SimDuration::ZERO, p.max_delay);
            self.stats.note_delay();
        }
        if p.reply_loss > 0.0 && self.rng.f64() < p.reply_loss {
            plan.reply_loss = true;
            self.stats.note_reply_loss();
        }
        plan
    }

    /// Checked at reply time (the reply leg's partition state may have
    /// changed since the request was planned, and scripted one-shot
    /// reply losses are consumed here). Returns true if the reply is
    /// lost after execution.
    pub(crate) fn reply_lost(&mut self, host: u32, to_client: bool, now: SimTime) -> bool {
        if self.leg_blocked(host, to_client, now) {
            self.stats.note_partition_drop();
            return true;
        }
        if let Some(pos) = self
            .scripted_reply_losses
            .iter()
            .position(|&l| l == (host, to_client))
        {
            self.scripted_reply_losses.remove(pos);
            self.stats.note_reply_loss();
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_inert() {
        let p = FaultParams::default();
        assert!(!p.any());
    }

    #[test]
    fn chaos_params_inject() {
        assert!(FaultParams::chaos(1).any());
    }

    #[test]
    fn same_seed_same_plans() {
        let draw = |seed| {
            let mut st = FaultState::new(FaultParams::chaos(seed));
            (0..64)
                .map(|_| {
                    let p = st.plan_attempt(1, false, SimTime::ZERO);
                    (p.drop, p.duplicate, p.delay, p.reply_loss)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn partitions_consume_no_randomness() {
        let mut st = FaultState::new(FaultParams::chaos(3));
        st.add_partition(
            2,
            PartitionDir::Both,
            SimTime::ZERO + SimDuration::from_secs(5),
        );
        // Every partitioned plan is a scripted drop...
        for _ in 0..8 {
            let p = st.plan_attempt(2, false, SimTime::ZERO);
            assert!(p.drop && p.partition);
        }
        // ...and the random stream is unperturbed: the next unpartitioned
        // host draws the same verdicts as a fresh state would.
        let mut fresh = FaultState::new(FaultParams::chaos(3));
        for _ in 0..32 {
            let a = st.plan_attempt(1, false, SimTime::ZERO);
            let b = fresh.plan_attempt(1, false, SimTime::ZERO);
            assert_eq!(
                (a.drop, a.duplicate, a.delay, a.reply_loss),
                (b.drop, b.duplicate, b.delay, b.reply_loss)
            );
        }
    }

    #[test]
    fn partition_directions_cut_the_right_legs() {
        let mut st = FaultState::new(FaultParams::default());
        let until = SimTime::ZERO + SimDuration::from_secs(1);
        st.add_partition(1, PartitionDir::Outbound, until);
        // Client call from host 1: request leg is outbound → dropped.
        assert!(st.plan_attempt(1, false, SimTime::ZERO).drop);
        // Callback to host 1: request leg is inbound → unaffected, but
        // its reply (outbound from host 1) is lost.
        assert!(!st.plan_attempt(1, true, SimTime::ZERO).drop);
        assert!(st.reply_lost(1, true, SimTime::ZERO));
        // An ordinary call's reply leg is inbound → unaffected.
        assert!(!st.reply_lost(1, false, SimTime::ZERO));
        // Other hosts are untouched.
        assert!(!st.plan_attempt(2, false, SimTime::ZERO).drop);
    }

    #[test]
    fn partition_windows_expire() {
        let mut st = FaultState::new(FaultParams::default());
        let until = SimTime::ZERO + SimDuration::from_secs(1);
        st.add_partition(1, PartitionDir::Both, until);
        assert!(st.plan_attempt(1, false, SimTime::ZERO).drop);
        assert!(
            !st.plan_attempt(1, false, until).drop,
            "window is half-open"
        );
    }

    #[test]
    fn kill_conservation() {
        let s = FaultStats::default();
        s.kill(1, false, 10);
        s.kill(1, false, 10);
        s.kill(1, false, 11);
        assert_eq!(s.killed_attempts(), 3);
        assert_eq!(s.outstanding_kills(), 3);
        s.absorb(1, false, 10);
        assert_eq!(s.retransmit_absorbed(), 2);
        assert_eq!(s.outstanding_kills(), 1);
        assert_eq!(
            s.killed_attempts(),
            s.retransmit_absorbed() + s.outstanding_kills()
        );
        // Absorbing an unkilled call is a no-op.
        s.absorb(2, false, 99);
        assert_eq!(s.retransmit_absorbed(), 2);
    }

    #[test]
    fn scripted_reply_loss_fires_once() {
        let mut st = FaultState::new(FaultParams::default());
        st.script_reply_loss(1, false);
        assert!(
            !st.reply_lost(2, false, SimTime::ZERO),
            "wrong link untouched"
        );
        assert!(st.reply_lost(1, false, SimTime::ZERO));
        assert!(!st.reply_lost(1, false, SimTime::ZERO), "one-shot");
        assert_eq!(st.stats.reply_losses(), 1);
    }
}
