//! Layout-routed client-side fan-out over a sharded namespace
//! (DESIGN.md §18).
//!
//! A [`ShardCaller`] stands where a single [`Caller`] used to: the SNFS
//! and NFS clients issue every RPC through it, and it decides which
//! shard's endpoint the request goes to.
//!
//! * Handle-addressed operations route by the handle's `fsid` (shard `s`
//!   exports `fsid = s + 1`), with no map lookup at all.
//! * Root-level name operations consult the cached [`Layout`] and are
//!   rewritten to the owning shard's export root.
//! * `readdir` of the export root fans out to every shard and merges the
//!   entries; `keepalive`/`recover` broadcast and sum the shard epochs,
//!   so any single shard reboot changes the aggregate epoch a client
//!   watches.
//! * A `WrongShard` reply (stale cached layout) carries the fresh epoch
//!   plus override delta: the caller refreshes its map and re-routes.
//!   A `Busy` reply (name momentarily locked by a cross-shard
//!   transaction) is retried after a fixed backoff.
//!
//! With one shard — the paper configuration — every method is a pure
//! pass-through to the single inner caller: no layout borrow, no
//! rewrite, no extra allocation, byte-identical scheduling.

use std::cell::RefCell;
use std::rc::Rc;

use spritely_proto::{
    ClientId, FileHandle, Layout, NfsReply, NfsRequest, NfsStatus, RecoveredFile,
};
use spritely_sim::{Sim, SimDuration};

use crate::endpoint::{Caller, RpcError};
use crate::transport::TransportParams;

/// Bound on consecutive `WrongShard` redirects for one logical call;
/// each redirect installs a strictly newer layout epoch, so hitting the
/// bound means the map is churning faster than the client can chase it.
const MAX_REDIRECTS: u32 = 8;

/// Backoff between retries of a `Busy` (name-locked) reply.
const BUSY_BACKOFF: SimDuration = SimDuration::from_millis(50);

/// Bound on `Busy` retries: 2000 × 50 ms = 100 s of simulated patience,
/// enough to ride out any scripted partition the chaos harness injects
/// while a cross-shard commit is in flight.
const MAX_BUSY_RETRIES: u32 = 2000;

struct Inner {
    callers: Vec<Caller<NfsRequest, NfsReply>>,
    /// Export root of each shard; `roots[0]` is the handle clients mount.
    roots: Vec<FileHandle>,
    layout: RefCell<Layout>,
    /// True when the servers run the cross-shard coordination path
    /// (SNFS). Plain NFS servers do not; the caller then fails
    /// cross-shard renames/links client-side with `XDev`.
    coordinates: bool,
    sim: Option<Sim>,
}

/// A shard-routing caller: one [`Caller`] per shard plus a cached
/// layout map. `From<Caller>` wraps a single caller for the unsharded
/// configuration, so every existing call site keeps compiling.
#[derive(Clone)]
pub struct ShardCaller {
    inner: Rc<Inner>,
}

impl From<Caller<NfsRequest, NfsReply>> for ShardCaller {
    fn from(caller: Caller<NfsRequest, NfsReply>) -> Self {
        ShardCaller {
            inner: Rc::new(Inner {
                callers: vec![caller],
                roots: Vec::new(),
                layout: RefCell::new(Layout::new(1)),
                coordinates: false,
                sim: None,
            }),
        }
    }
}

impl ShardCaller {
    /// Builds a sharded caller: `callers[s]` reaches shard `s`, whose
    /// export root is `roots[s]`. All callers must share one xid space
    /// (see [`Caller::share_xids_with`]).
    pub fn sharded(
        sim: &Sim,
        callers: Vec<Caller<NfsRequest, NfsReply>>,
        roots: Vec<FileHandle>,
        coordinates: bool,
    ) -> Self {
        assert_eq!(callers.len(), roots.len());
        assert!(!callers.is_empty());
        let n = callers.len() as u32;
        ShardCaller {
            inner: Rc::new(Inner {
                callers,
                roots,
                layout: RefCell::new(Layout::new(n)),
                coordinates,
                sim: Some(sim.clone()),
            }),
        }
    }

    /// Number of shards behind this caller.
    pub fn shards(&self) -> usize {
        self.inner.callers.len()
    }

    /// The caller's client id.
    pub fn client_id(&self) -> ClientId {
        self.inner.callers[0].client_id()
    }

    /// The active transport configuration (shard 0's; the testbed
    /// configures every shard's caller identically).
    pub fn transport(&self) -> TransportParams {
        self.inner.callers[0].transport()
    }

    /// Flushes any batched background requests on every shard's caller.
    pub fn kick(&self) {
        for c in &self.inner.callers {
            c.kick();
        }
    }

    /// Issues one RPC (foreground, unparented trace span).
    pub async fn call(&self, req: NfsRequest) -> Result<NfsReply, RpcError> {
        self.dispatch(0, req, false).await.map(|(rep, _)| rep)
    }

    /// Issues one RPC, parenting its trace events under `parent`.
    pub async fn call_ctx(&self, parent: u64, req: NfsRequest) -> Result<NfsReply, RpcError> {
        self.dispatch(parent, req, false).await.map(|(rep, _)| rep)
    }

    /// Like [`ShardCaller::call_ctx`], but also reports whether the
    /// reply arrived only after a retransmission.
    pub async fn call_ctx_flagged(
        &self,
        parent: u64,
        req: NfsRequest,
    ) -> Result<(NfsReply, bool), RpcError> {
        self.dispatch(parent, req, false).await
    }

    /// Background variant (batchable write-behind / read-ahead traffic).
    pub async fn call_bg(&self, parent: u64, req: NfsRequest) -> Result<NfsReply, RpcError> {
        self.dispatch(parent, req, true).await.map(|(rep, _)| rep)
    }

    async fn issue(
        &self,
        shard: usize,
        parent: u64,
        req: NfsRequest,
        bg: bool,
    ) -> Result<(NfsReply, bool), RpcError> {
        let c = &self.inner.callers[shard];
        if bg {
            c.call_bg(parent, req).await.map(|rep| (rep, false))
        } else {
            c.call_ctx_flagged(parent, req).await
        }
    }

    async fn dispatch(
        &self,
        parent: u64,
        req: NfsRequest,
        bg: bool,
    ) -> Result<(NfsReply, bool), RpcError> {
        if self.inner.callers.len() == 1 {
            // Paper configuration: pure pass-through.
            return self.issue(0, parent, req, bg).await;
        }
        match &req {
            NfsRequest::Keepalive { .. } | NfsRequest::Recover { .. } => {
                self.broadcast(parent, req, bg).await
            }
            NfsRequest::Readdir { dir } if *dir == self.inner.roots[0] => {
                self.fan_readdir(parent, bg).await
            }
            _ => self.routed(parent, req, bg).await,
        }
    }

    /// Routes a request to the shard that owns it, chasing `WrongShard`
    /// redirects and backing off on `Busy` name locks.
    async fn routed(
        &self,
        parent: u64,
        req: NfsRequest,
        bg: bool,
    ) -> Result<(NfsReply, bool), RpcError> {
        let mut redirects = 0;
        let mut busy = 0;
        loop {
            let (shard, routed) = match self.route(req.clone()) {
                Ok(r) => r,
                Err(status) => return Ok((NfsReply::Err(status), false)),
            };
            match self.issue(shard, parent, routed, bg).await? {
                (NfsReply::WrongShard { epoch, moves }, _) => {
                    self.inner.layout.borrow_mut().apply(epoch, &moves);
                    redirects += 1;
                    if redirects > MAX_REDIRECTS {
                        return Ok((NfsReply::Err(NfsStatus::Io), false));
                    }
                }
                (NfsReply::Err(NfsStatus::Busy), _) => {
                    busy += 1;
                    if busy > MAX_BUSY_RETRIES {
                        return Ok((NfsReply::Err(NfsStatus::Busy), false));
                    }
                    self.inner
                        .sim
                        .as_ref()
                        .expect("sharded callers carry a sim handle")
                        .sleep(BUSY_BACKOFF)
                        .await;
                }
                done => return Ok(done),
            }
        }
    }

    /// Picks the owning shard and rewrites root-directory handles to
    /// that shard's export root. Returns a status for operations the
    /// sharded namespace cannot express (deep cross-shard moves, or any
    /// cross-shard move when the servers do not coordinate).
    fn route(&self, req: NfsRequest) -> Result<(usize, NfsRequest), NfsStatus> {
        let inner = &self.inner;
        let root = inner.roots[0];
        let layout = inner.layout.borrow();
        let owner = |name: &str| layout.owner(name) as usize;
        let of_fh = |fh: FileHandle| (fh.fsid.saturating_sub(1)) as usize;
        Ok(match req {
            NfsRequest::Lookup { dir, name } if dir == root => {
                let s = owner(&name);
                (
                    s,
                    NfsRequest::Lookup {
                        dir: inner.roots[s],
                        name,
                    },
                )
            }
            NfsRequest::Create { dir, name } if dir == root => {
                let s = owner(&name);
                (
                    s,
                    NfsRequest::Create {
                        dir: inner.roots[s],
                        name,
                    },
                )
            }
            NfsRequest::Remove { dir, name } if dir == root => {
                let s = owner(&name);
                (
                    s,
                    NfsRequest::Remove {
                        dir: inner.roots[s],
                        name,
                    },
                )
            }
            NfsRequest::Mkdir { dir, name } if dir == root => {
                let s = owner(&name);
                (
                    s,
                    NfsRequest::Mkdir {
                        dir: inner.roots[s],
                        name,
                    },
                )
            }
            NfsRequest::Rmdir { dir, name } if dir == root => {
                let s = owner(&name);
                (
                    s,
                    NfsRequest::Rmdir {
                        dir: inner.roots[s],
                        name,
                    },
                )
            }
            NfsRequest::Symlink { dir, name, target } if dir == root => {
                let s = owner(&name);
                (
                    s,
                    NfsRequest::Symlink {
                        dir: inner.roots[s],
                        name,
                        target,
                    },
                )
            }
            NfsRequest::Rename {
                from_dir,
                from_name,
                to_dir,
                to_name,
            } => {
                let s = if from_dir == root {
                    owner(&from_name)
                } else {
                    of_fh(from_dir)
                };
                let from_dir = if from_dir == root {
                    inner.roots[s]
                } else {
                    from_dir
                };
                let to_dir = if to_dir == root {
                    if owner(&to_name) != s && !inner.coordinates {
                        return Err(NfsStatus::XDev);
                    }
                    // Same owner, or the coordinating (SNFS) servers run
                    // the cross-shard path: address the coordinator's root.
                    inner.roots[s]
                } else if of_fh(to_dir) != s {
                    // A cross-shard move below the root would have to
                    // carry file bodies between independent stores.
                    return Err(NfsStatus::XDev);
                } else {
                    to_dir
                };
                (
                    s,
                    NfsRequest::Rename {
                        from_dir,
                        from_name,
                        to_dir,
                        to_name,
                    },
                )
            }
            NfsRequest::Link {
                from,
                to_dir,
                to_name,
            } => {
                let s = of_fh(from);
                let to_dir = if to_dir == root {
                    if owner(&to_name) != s && !inner.coordinates {
                        return Err(NfsStatus::XDev);
                    }
                    inner.roots[s]
                } else if of_fh(to_dir) != s {
                    return Err(NfsStatus::XDev);
                } else {
                    to_dir
                };
                (
                    s,
                    NfsRequest::Link {
                        from,
                        to_dir,
                        to_name,
                    },
                )
            }
            NfsRequest::Null => (0, NfsRequest::Null),
            // Everything else is handle-addressed: the fsid is the shard.
            other => {
                let s = match other {
                    NfsRequest::GetAttr { fh }
                    | NfsRequest::SetAttr { fh, .. }
                    | NfsRequest::Read { fh, .. }
                    | NfsRequest::Write { fh, .. }
                    | NfsRequest::StatFs { fh }
                    | NfsRequest::Open { fh, .. }
                    | NfsRequest::Close { fh, .. }
                    | NfsRequest::Readlink { fh }
                    | NfsRequest::DelegReturn { fh, .. } => of_fh(fh),
                    NfsRequest::Lookup { dir, .. }
                    | NfsRequest::Create { dir, .. }
                    | NfsRequest::Remove { dir, .. }
                    | NfsRequest::Mkdir { dir, .. }
                    | NfsRequest::Rmdir { dir, .. }
                    | NfsRequest::Symlink { dir, .. }
                    | NfsRequest::Readdir { dir } => of_fh(dir),
                    _ => 0,
                };
                (s.min(inner.callers.len() - 1), other)
            }
        })
    }

    /// `keepalive`/`recover` address every shard; the aggregate epoch a
    /// client tracks is the sum of the shard epochs, so any one shard's
    /// reboot perturbs it. `recover` reports each file to the shard
    /// whose store holds it.
    async fn broadcast(
        &self,
        parent: u64,
        req: NfsRequest,
        bg: bool,
    ) -> Result<(NfsReply, bool), RpcError> {
        let n = self.inner.callers.len();
        let mut total = 0u64;
        for s in 0..n {
            let per_shard = match &req {
                NfsRequest::Recover { client, files } => NfsRequest::Recover {
                    client: *client,
                    files: files
                        .iter()
                        .filter(|f| (f.fh.fsid.saturating_sub(1)) as usize == s)
                        .copied()
                        .collect::<Vec<RecoveredFile>>(),
                },
                _ => req.clone(),
            };
            match self.issue(s, parent, per_shard, bg).await? {
                (NfsReply::Epoch(e), _) => total += e,
                (NfsReply::Err(status), flag) => return Ok((NfsReply::Err(status), flag)),
                (other, flag) => return Ok((other, flag)),
            }
        }
        Ok((NfsReply::Epoch(total), false))
    }

    /// `readdir` of the export root: every shard lists its slice of the
    /// root, and the caller merges them sorted by name.
    async fn fan_readdir(&self, parent: u64, bg: bool) -> Result<(NfsReply, bool), RpcError> {
        let n = self.inner.callers.len();
        let mut entries = Vec::new();
        for s in 0..n {
            let req = NfsRequest::Readdir {
                dir: self.inner.roots[s],
            };
            match self.issue(s, parent, req, bg).await? {
                (NfsReply::Readdir { entries: e }, _) => entries.extend(e),
                (NfsReply::Err(status), flag) => return Ok((NfsReply::Err(status), flag)),
                (other, flag) => return Ok((other, flag)),
            }
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Ok((NfsReply::Readdir { entries }, false))
    }
}
