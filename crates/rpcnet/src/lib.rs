//! RPC-over-network model.
//!
//! Models the Sun-RPC-over-UDP transport the paper's systems used, at the
//! level of detail the results depend on:
//!
//! * a shared Ethernet-like wire ([`Network`]) with per-message transfer
//!   time (size / bandwidth, serialized on the wire) plus fixed latency;
//! * server endpoints ([`Endpoint`]) with a FIFO thread pool, per-call CPU
//!   cost on the host CPU, and a duplicate-request cache (NFS retransmits
//!   are *not* idempotent without one — Juszczak 1989, cited in §2.5);
//! * client callers ([`Caller`]) with timeout + retransmission;
//! * per-procedure counters and call-rate series for the paper's tables
//!   and figures.
//!
//! Both directions use the same machinery: NFS/SNFS requests flow
//! client→server, and SNFS `callback` RPCs flow server→client over a
//! second endpoint registered at the client (paper §4.2.2: "we simply use
//! the existing NFS server code").

mod endpoint;
mod network;

pub use endpoint::{Caller, CallerParams, Endpoint, EndpointParams, RpcError};
pub use network::{NetParams, Network};

use spritely_proto::{CallbackArg, CallbackReply, NfsProc, NfsReply, NfsRequest};

/// Anything with a measurable wire size (drives transfer-time modelling).
pub trait Wire {
    /// Approximate bytes on the wire.
    fn wire_size(&self) -> usize;
}

/// Anything with a procedure id (drives per-procedure accounting).
pub trait Proc {
    /// The procedure this message invokes.
    fn proc_id(&self) -> NfsProc;
}

impl Wire for NfsRequest {
    fn wire_size(&self) -> usize {
        NfsRequest::wire_size(self)
    }
}

impl Proc for NfsRequest {
    fn proc_id(&self) -> NfsProc {
        NfsRequest::proc_id(self)
    }
}

impl Wire for NfsReply {
    fn wire_size(&self) -> usize {
        NfsReply::wire_size(self)
    }
}

impl Wire for CallbackArg {
    fn wire_size(&self) -> usize {
        CallbackArg::wire_size(self)
    }
}

impl Proc for CallbackArg {
    fn proc_id(&self) -> NfsProc {
        NfsProc::Callback
    }
}

impl Wire for CallbackReply {
    fn wire_size(&self) -> usize {
        128
    }
}
