//! RPC-over-network model.
//!
//! Models the Sun-RPC-over-UDP transport the paper's systems used, at the
//! level of detail the results depend on:
//!
//! * a shared Ethernet-like wire ([`Network`]) with per-message transfer
//!   time (size / bandwidth, serialized on the wire) plus fixed latency;
//! * server endpoints ([`Endpoint`]) with a FIFO thread pool, per-call CPU
//!   cost on the host CPU, and a duplicate-request cache (NFS retransmits
//!   are *not* idempotent without one — Juszczak 1989, cited in §2.5);
//! * client callers ([`Caller`]) with timeout + retransmission;
//! * per-procedure counters and call-rate series for the paper's tables
//!   and figures.
//!
//! Both directions use the same machinery: NFS/SNFS requests flow
//! client→server, and SNFS `callback` RPCs flow server→client over a
//! second endpoint registered at the client (paper §4.2.2: "we simply use
//! the existing NFS server code").

mod endpoint;
mod fault;
mod network;
mod shard;
mod transport;

pub use endpoint::{Caller, CallerParams, Endpoint, EndpointParams, RpcError};
pub use fault::{FaultParams, FaultPlan, FaultStats, PartitionDir};
pub use network::{NetParams, Network};
pub use shard::ShardCaller;
pub use transport::{Compoundable, TransportParams, TransportStats};

use spritely_proto::{CallbackArg, CallbackReply, FileHandle, NfsProc, NfsReply, NfsRequest};

/// Anything with a measurable wire size (drives transfer-time modelling).
pub trait Wire {
    /// Approximate bytes on the wire.
    fn wire_size(&self) -> usize;
}

/// Anything with a procedure id (drives per-procedure accounting).
pub trait Proc {
    /// The procedure this message invokes.
    fn proc_id(&self) -> NfsProc;

    /// True for procedures whose handler may block on a consistency
    /// action (a per-file lock or a callback to another client). The
    /// endpoint admits such requests to at most N−1 of its N threads
    /// (paper §3.2): a callback-induced write-back must always find a
    /// free thread, or the very operation waiting on the callback
    /// starves the traffic that would unblock it.
    fn may_block(&self) -> bool {
        false
    }

    /// The file this request concerns, if any (for tracing).
    fn trace_fh(&self) -> Option<FileHandle> {
        None
    }

    /// `(offset, len)` of the affected byte range, if any (for tracing).
    fn trace_range(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Replies that can report success/failure to the trace (the trace
/// records an `ok` flag per reply; the wire format is unaffected).
pub trait ReplyStatus {
    /// True unless the reply signals an error.
    fn trace_ok(&self) -> bool;
}

impl Wire for NfsRequest {
    fn wire_size(&self) -> usize {
        NfsRequest::wire_size(self)
    }
}

impl Proc for NfsRequest {
    fn proc_id(&self) -> NfsProc {
        NfsRequest::proc_id(self)
    }

    fn trace_fh(&self) -> Option<FileHandle> {
        match self {
            NfsRequest::Null | NfsRequest::Keepalive { .. } | NfsRequest::Recover { .. } => None,
            NfsRequest::GetAttr { fh }
            | NfsRequest::SetAttr { fh, .. }
            | NfsRequest::Read { fh, .. }
            | NfsRequest::Write { fh, .. }
            | NfsRequest::StatFs { fh }
            | NfsRequest::Open { fh, .. }
            | NfsRequest::Close { fh, .. }
            | NfsRequest::Readlink { fh }
            | NfsRequest::DelegReturn { fh, .. } => Some(*fh),
            NfsRequest::Lookup { dir, .. }
            | NfsRequest::Create { dir, .. }
            | NfsRequest::Remove { dir, .. }
            | NfsRequest::Mkdir { dir, .. }
            | NfsRequest::Rmdir { dir, .. }
            | NfsRequest::Readdir { dir }
            | NfsRequest::Symlink { dir, .. } => Some(*dir),
            NfsRequest::Rename { from_dir, .. } => Some(*from_dir),
            NfsRequest::Link { from, .. } => Some(*from),
            NfsRequest::Compound { .. }
            | NfsRequest::TxPrepare { .. }
            | NfsRequest::TxCommit { .. }
            | NfsRequest::TxAbort { .. } => None,
        }
    }

    fn trace_range(&self) -> (u64, u64) {
        match self {
            NfsRequest::Read { offset, count, .. } => (*offset, u64::from(*count)),
            NfsRequest::Write { offset, data, .. } => (*offset, data.len() as u64),
            _ => (0, 0),
        }
    }

    /// Open and close serialize on the server's per-file lock, and an
    /// open can additionally wait out a callback round; both can stack
    /// behind a file whose write-back is still in flight. (The hybrid-NFS
    /// read/write bracket also takes the lock, but classifying all reads
    /// and writes as blocking would starve the very write-backs the
    /// reserved thread exists for.)
    fn may_block(&self) -> bool {
        matches!(self, NfsRequest::Open { .. } | NfsRequest::Close { .. })
    }
}

impl Wire for NfsReply {
    fn wire_size(&self) -> usize {
        NfsReply::wire_size(self)
    }
}

impl Wire for CallbackArg {
    fn wire_size(&self) -> usize {
        CallbackArg::wire_size(self)
    }
}

impl Proc for CallbackArg {
    fn proc_id(&self) -> NfsProc {
        NfsProc::Callback
    }

    fn trace_fh(&self) -> Option<FileHandle> {
        Some(self.fh)
    }
}

impl ReplyStatus for NfsReply {
    fn trace_ok(&self) -> bool {
        !matches!(self, NfsReply::Err(_))
    }
}

impl ReplyStatus for CallbackReply {
    fn trace_ok(&self) -> bool {
        self.ok
    }
}

impl Wire for CallbackReply {
    fn wire_size(&self) -> usize {
        CallbackReply::wire_size(self)
    }
}

impl Compoundable for NfsRequest {
    fn compound(parts: Vec<Self>) -> Self {
        NfsRequest::compound(parts)
    }
}

impl Compoundable for NfsReply {
    fn compound(parts: Vec<Self>) -> Self {
        NfsReply::compound(parts)
    }
}

// Callback RPCs are one-at-a-time by design (the server waits each one
// out under the N−1 bound), so batching is never enabled on callback
// callers; these impls only satisfy the caller's trait bound.
impl Compoundable for CallbackArg {
    fn compound(mut parts: Vec<Self>) -> Self {
        assert_eq!(parts.len(), 1, "callback RPCs are never batched");
        parts.pop().expect("length checked")
    }
}

impl Compoundable for CallbackReply {
    fn compound(mut parts: Vec<Self>) -> Self {
        assert_eq!(parts.len(), 1, "callback RPCs are never batched");
        parts.pop().expect("length checked")
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;

    #[test]
    fn callback_reply_wire_size_comes_from_proto() {
        // Regression: this was a hardcoded 128 that would silently
        // diverge if the protocol's header size ever changed. It must
        // track the shared header constant like every other message.
        let rep = CallbackReply { ok: true };
        assert_eq!(Wire::wire_size(&rep), CallbackReply::wire_size(&rep));
        assert_eq!(
            Wire::wire_size(&rep),
            Wire::wire_size(&NfsReply::Ok),
            "a bodyless callback reply weighs the same as any bodyless reply"
        );
        let arg = CallbackArg {
            fh: FileHandle::new(1, 1, 0),
            writeback: false,
            invalidate: false,
            relinquish: false,
            recall: false,
            seq: 0,
        };
        assert_eq!(Wire::wire_size(&rep), Wire::wire_size(&arg));
    }
}
