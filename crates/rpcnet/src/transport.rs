//! Transport-pipeline configuration and observability.
//!
//! Everything new in the transport pipeline — compound-RPC batching,
//! piggybacked post-op attributes, the switched network, exponential
//! retransmission backoff — is gated behind [`TransportParams`]. The
//! `paper()` default reproduces the paper's transport exactly (one
//! message per RPC on a shared half-duplex Ethernet, fixed retransmit
//! timeout), byte-identical to runs that predate this module.

use spritely_metrics::{Histogram, OpCounter};
use spritely_sim::SimDuration;

/// Client/transport-level pipeline knobs.
#[derive(Debug, Clone, Copy)]
pub struct TransportParams {
    /// Most requests one compound batch may carry; 1 disables batching
    /// entirely (the paper transport).
    pub max_batch: usize,
    /// Nagle-style deadline: an underfull batch is flushed this long
    /// after its first request arrives.
    pub batch_window: SimDuration,
    /// Clients consume piggybacked post-op attributes instead of probing
    /// with follow-up `getattr` RPCs.
    pub piggyback: bool,
    /// Use the switched full-duplex network instead of the shared bus.
    pub switched: bool,
    /// Per-attempt timeout multiplier applied on each retransmission;
    /// 1.0 keeps the paper's fixed timeout.
    pub backoff_factor: f64,
    /// Ceiling for the backed-off per-attempt timeout.
    pub backoff_max: SimDuration,
    /// Fractional jitter applied to each attempt's timeout (0.25 means
    /// ±12.5 %), drawn from the caller's own deterministic stream; 0
    /// disables jitter (and consumes no randomness).
    pub backoff_jitter: f64,
}

impl TransportParams {
    /// The paper's transport: no batching, no piggyback consumption,
    /// shared-bus Ethernet, fixed retransmission timeout.
    pub fn paper() -> Self {
        TransportParams {
            max_batch: 1,
            batch_window: SimDuration::ZERO,
            piggyback: false,
            switched: false,
            backoff_factor: 1.0,
            backoff_max: SimDuration::from_secs(8),
            backoff_jitter: 0.0,
        }
    }

    /// The pipelined transport: Nagle batching into compounds,
    /// piggybacked attributes, switched full-duplex links, exponential
    /// backoff with deterministic jitter.
    pub fn pipelined() -> Self {
        TransportParams {
            max_batch: 8,
            batch_window: SimDuration::from_micros(1200),
            piggyback: true,
            switched: true,
            backoff_factor: 2.0,
            backoff_max: SimDuration::from_secs(8),
            backoff_jitter: 0.25,
        }
    }
}

impl Default for TransportParams {
    fn default() -> Self {
        TransportParams::paper()
    }
}

/// Shared transport observability: how well batching is doing. Cheap to
/// clone; clones share state, so one instance can aggregate every
/// caller on a host (or in a whole run).
#[derive(Clone, Default)]
pub struct TransportStats {
    /// One observation per flushed batch: the number of inner requests.
    pub batch_sizes: Histogram,
    /// Round trips saved, per procedure: every request after the first
    /// in a batch rode along instead of paying its own wire exchange.
    pub saved: OpCounter,
}

impl TransportStats {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Messages that can ride in a compound batch. `compound` wraps a batch
/// into one wire message sharing a single header (a batch of one must
/// stay the plain message, so unbatched traffic is unchanged).
pub trait Compoundable: Sized {
    fn compound(parts: Vec<Self>) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_transport_is_inert() {
        let p = TransportParams::paper();
        assert_eq!(p.max_batch, 1);
        assert!(!p.piggyback && !p.switched);
        assert_eq!(p.backoff_factor, 1.0);
        assert_eq!(p.backoff_jitter, 0.0);
    }

    #[test]
    fn pipelined_transport_enables_every_stage() {
        let p = TransportParams::pipelined();
        assert!(p.max_batch > 1);
        assert!(!p.batch_window.is_zero());
        assert!(p.piggyback && p.switched);
        assert!(p.backoff_factor > 1.0);
    }
}
