//! The network model: a half-duplex shared wire (classic Ethernet) or,
//! optionally, a switched fabric with a full-duplex link per host.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use spritely_sim::{Resource, Sim, SimDuration, SimTime};
use spritely_trace::{EventKind, Tracer};

use crate::fault::{FaultParams, FaultPlan, FaultState, FaultStats, PartitionDir};

/// Network timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// Fixed per-message latency (propagation + protocol stack), charged
    /// after the wire is released.
    pub latency: SimDuration,
    /// Wire bandwidth in bytes per second (per link when `switched`).
    pub bandwidth: u64,
    /// False models the paper's shared-bus Ethernet: every message in
    /// either direction serializes on one medium. True models a switched
    /// fabric: each host gets a full-duplex link (one lane per direction),
    /// so only messages sharing a host *and* a direction serialize.
    pub switched: bool,
}

impl NetParams {
    /// Parameters approximating the paper's 10 Mbit/s Ethernet.
    pub fn ethernet_10mbit() -> Self {
        NetParams {
            latency: SimDuration::from_micros(700),
            bandwidth: 1_250_000,
            switched: false,
        }
    }

    /// The same link timing, but switched full-duplex per host.
    pub fn switched_full_duplex(self) -> Self {
        NetParams {
            switched: true,
            ..self
        }
    }

    /// Time a message of `bytes` occupies the wire.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.bandwidth == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros((bytes as u64 * 1_000_000).div_ceil(self.bandwidth))
    }
}

struct NetworkInner {
    sim: Sim,
    name: String,
    /// The shared medium (used when `params.switched` is false).
    wire: Resource,
    /// Per-`(host, to_server)` lanes, created on first use (switched mode).
    links: RefCell<HashMap<(u32, bool), Resource>>,
    params: NetParams,
    messages: Cell<u64>,
    bytes: Cell<u64>,
    tracer: RefCell<Option<Tracer>>,
    /// Fault-injection state. `None` until faults or partitions are
    /// configured, so paper-mode runs never touch it.
    faults: RefCell<Option<FaultState>>,
}

/// A network segment. Messages pay a transfer time (size / bandwidth,
/// serialized on the relevant wire resource) plus a fixed off-wire
/// latency. Cheap to clone; clones share the wire and the counters.
#[derive(Clone)]
pub struct Network {
    inner: Rc<NetworkInner>,
}

impl Network {
    /// Creates a network segment.
    pub fn new(sim: &Sim, name: impl Into<String>, params: NetParams) -> Self {
        let name = name.into();
        Network {
            inner: Rc::new(NetworkInner {
                sim: sim.clone(),
                wire: Resource::new(sim, name.clone(), 1),
                name,
                links: RefCell::new(HashMap::new()),
                params,
                messages: Cell::new(0),
                bytes: Cell::new(0),
                tracer: RefCell::new(None),
                faults: RefCell::new(None),
            }),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> NetParams {
        self.inner.params
    }

    /// The shared wire resource (for utilization reporting).
    pub fn wire(&self) -> &Resource {
        &self.inner.wire
    }

    /// Attaches a tracer: every transmitted message is recorded as a
    /// `net_xmit` event.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.inner.tracer.borrow_mut() = Some(tracer);
    }

    /// Messages transmitted so far (every request, reply, or compound
    /// batch counts as one).
    pub fn messages(&self) -> u64 {
        self.inner.messages.get()
    }

    /// Bytes transmitted so far.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.get()
    }

    /// Total microseconds the medium has been busy transferring. On a
    /// shared bus this is the busy time of the single wire; on a switched
    /// fabric it is the aggregate across all lanes (and can exceed
    /// elapsed time).
    pub fn busy_micros(&self) -> u128 {
        if self.inner.params.switched {
            self.inner
                .links
                .borrow()
                .values()
                .map(|r| r.busy_permit_micros())
                .sum()
        } else {
            self.inner.wire.busy_permit_micros()
        }
    }

    /// Installs (or re-seeds) the fault-injection layer. The all-zero
    /// default is inert; callers consult the layer per RPC attempt via
    /// [`plan_attempt`](Self::plan_attempt).
    pub fn set_faults(&self, params: FaultParams) {
        let mut f = self.inner.faults.borrow_mut();
        match f.as_mut() {
            Some(st) => st.set_params(params),
            None => *f = Some(FaultState::new(params)),
        }
    }

    /// True once faults or partitions have been configured.
    pub fn faults_active(&self) -> bool {
        self.inner.faults.borrow().is_some()
    }

    /// The shared fault counters (installing inert fault state on first
    /// use if none exists yet).
    pub fn fault_stats(&self) -> FaultStats {
        self.inner
            .faults
            .borrow_mut()
            .get_or_insert_with(|| FaultState::new(FaultParams::default()))
            .stats
            .clone()
    }

    /// Scripts a partition of `host` in direction `dir` lasting until
    /// the simulation clock reaches `until` (half-open). Scripted
    /// partitions consume no randomness, so they never perturb the
    /// random fault stream.
    pub fn partition(&self, host: u32, dir: PartitionDir, until: SimTime) {
        self.inner
            .faults
            .borrow_mut()
            .get_or_insert_with(|| FaultState::new(FaultParams::default()))
            .add_partition(host, dir, until);
        self.emit_fault(host, false, 0, "partition_begin");
    }

    /// Heals every partition window of `host` immediately.
    pub fn heal(&self, host: u32) {
        if let Some(st) = self.inner.faults.borrow_mut().as_mut() {
            st.heal(host);
        }
    }

    /// Scripts the loss of the *next* reply on the `(host, to_client)`
    /// fault link: the server executes, the response vanishes. One-shot;
    /// used by regression tests that need exactly one lost reply.
    pub fn lose_next_reply(&self, host: u32, to_client: bool) {
        self.inner
            .faults
            .borrow_mut()
            .get_or_insert_with(|| FaultState::new(FaultParams::default()))
            .script_reply_loss(host, to_client);
    }

    /// Draws the fault verdict for one RPC attempt on the `(host,
    /// to_client)` fault link. Inert (no draws, no allocation) until
    /// [`set_faults`](Self::set_faults) or a partition installs state.
    pub fn plan_attempt(&self, host: u32, to_client: bool) -> FaultPlan {
        let mut f = self.inner.faults.borrow_mut();
        let Some(st) = f.as_mut() else {
            return FaultPlan::default();
        };
        let plan = st.plan_attempt(host, to_client, self.inner.sim.now());
        drop(f);
        if plan.drop {
            let kind = if plan.partition { "partition" } else { "drop" };
            self.emit_fault(host, to_client, 0, kind);
        }
        if plan.duplicate {
            self.emit_fault(host, to_client, 0, "dup");
        }
        if !plan.delay.is_zero() {
            self.emit_fault(host, to_client, 0, "delay");
        }
        if plan.reply_loss {
            self.emit_fault(host, to_client, 0, "reply_loss");
        }
        plan
    }

    /// Reply-time fault check for `xid`'s reply on the `(host,
    /// to_client)` link: a partition may have started since the request
    /// was planned, and scripted one-shot reply losses are consumed
    /// here. Returns true if the reply is lost after execution.
    pub fn reply_lost(&self, host: u32, to_client: bool, xid: u64) -> bool {
        let mut f = self.inner.faults.borrow_mut();
        let Some(st) = f.as_mut() else {
            return false;
        };
        let lost = st.reply_lost(host, to_client, self.inner.sim.now());
        drop(f);
        if lost {
            self.emit_fault(host, to_client, xid, "reply_loss");
        }
        lost
    }

    /// Records that a fault killed `xid`'s attempt on the given link
    /// (feeds the [`FaultStats`] kill-conservation accounting).
    pub fn note_kill(&self, host: u32, to_client: bool, xid: u64) {
        if let Some(st) = self.inner.faults.borrow().as_ref() {
            st.stats.kill(host, to_client, xid);
        }
    }

    /// Marks `xid`'s call complete: any kills charged against it were
    /// absorbed by retransmission and move to the absorbed counter.
    pub fn absorb_kills(&self, host: u32, to_client: bool, xid: u64) {
        if let Some(st) = self.inner.faults.borrow().as_ref() {
            st.stats.absorb(host, to_client, xid);
        }
    }

    fn emit_fault(&self, host: u32, to_client: bool, xid: u64, kind: &'static str) {
        if let Some(t) = self.inner.tracer.borrow().as_ref() {
            t.emit(
                0,
                EventKind::Fault {
                    host,
                    to_client,
                    xid,
                    kind,
                },
            );
        }
    }

    fn lane(&self, host: u32, to_server: bool) -> Resource {
        let mut links = self.inner.links.borrow_mut();
        links
            .entry((host, to_server))
            .or_insert_with(|| {
                let dir = if to_server { "up" } else { "down" };
                Resource::new(
                    &self.inner.sim,
                    format!("{}-h{host}-{dir}", self.inner.name),
                    1,
                )
            })
            .clone()
    }

    /// Transmits one message of `bytes` on the shared medium (host 0,
    /// client→server direction when switched).
    pub async fn transmit(&self, bytes: usize) {
        self.transmit_from(0, true, bytes).await;
    }

    /// Transmits one message of `bytes`: queues for the wire (the shared
    /// bus, or host `host`'s directional lane when switched), occupies it
    /// for the transfer time, then waits the fixed latency.
    pub async fn transmit_from(&self, host: u32, to_server: bool, bytes: usize) {
        let inner = &self.inner;
        inner.messages.set(inner.messages.get() + 1);
        inner.bytes.set(inner.bytes.get() + bytes as u64);
        if let Some(t) = inner.tracer.borrow().as_ref() {
            t.emit(
                0,
                EventKind::NetXmit {
                    host,
                    to_server,
                    bytes: bytes as u64,
                },
            );
        }
        let t = inner.params.transfer_time(bytes);
        if !t.is_zero() {
            let wire = if inner.params.switched {
                self.lane(host, to_server)
            } else {
                inner.wire.clone()
            };
            let guard = wire.acquire().await;
            inner.sim.sleep(t).await;
            drop(guard);
        }
        if !inner.params.latency.is_zero() {
            inner.sim.sleep(inner.params.latency).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> NetParams {
        NetParams {
            latency: SimDuration::from_micros(500),
            bandwidth: 1_000_000,
            switched: false,
        }
    }

    fn net(sim: &Sim) -> Network {
        Network::new(sim, "eth0", params())
    }

    #[test]
    fn message_time_is_transfer_plus_latency() {
        let sim = Sim::new();
        let n = net(&sim);
        sim.block_on(async move {
            n.transmit(1000).await; // 1 ms transfer + 0.5 ms latency
        });
        assert_eq!(sim.now().as_micros(), 1_500);
    }

    #[test]
    fn concurrent_messages_serialize_on_wire_but_overlap_latency() {
        let sim = Sim::new();
        let n = net(&sim);
        for _ in 0..2 {
            let n = n.clone();
            sim.spawn(async move {
                n.transmit(1000).await;
            });
        }
        sim.run_to_quiescence();
        // Transfers serialize (1 ms + 1 ms); the second message's latency
        // starts at 2 ms, so total is 2.5 ms (latencies overlap).
        assert_eq!(sim.now().as_micros(), 2_500);
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let sim = Sim::new();
        let n = net(&sim);
        sim.block_on(async move {
            n.transmit(0).await;
        });
        assert_eq!(sim.now().as_micros(), 500);
    }

    #[test]
    fn ethernet_params_sane() {
        let p = NetParams::ethernet_10mbit();
        // A 4 KB block takes ~3.3 ms on a 10 Mbit wire.
        let t = p.transfer_time(4096);
        assert!(t.as_micros() > 3_000 && t.as_micros() < 3_600, "{t}");
    }

    #[test]
    fn switched_links_do_not_serialize_across_hosts() {
        let sim = Sim::new();
        let n = Network::new(&sim, "sw0", params().switched_full_duplex());
        for host in 0..2 {
            let n = n.clone();
            sim.spawn(async move {
                n.transmit_from(host, true, 1000).await;
            });
        }
        sim.run_to_quiescence();
        // Each host has its own lane: both transfers overlap fully.
        assert_eq!(sim.now().as_micros(), 1_500);
    }

    #[test]
    fn switched_same_lane_still_serializes() {
        let sim = Sim::new();
        let n = Network::new(&sim, "sw0", params().switched_full_duplex());
        for _ in 0..2 {
            let n = n.clone();
            sim.spawn(async move {
                n.transmit_from(1, true, 1000).await;
            });
        }
        sim.run_to_quiescence();
        assert_eq!(sim.now().as_micros(), 2_500);
    }

    #[test]
    fn full_duplex_directions_overlap() {
        let sim = Sim::new();
        let n = Network::new(&sim, "sw0", params().switched_full_duplex());
        for dir in [true, false] {
            let n = n.clone();
            sim.spawn(async move {
                n.transmit_from(1, dir, 1000).await;
            });
        }
        sim.run_to_quiescence();
        assert_eq!(sim.now().as_micros(), 1_500);
    }

    #[test]
    fn counters_track_messages_and_bytes() {
        let sim = Sim::new();
        let n = net(&sim);
        let n2 = n.clone();
        sim.block_on(async move {
            n2.transmit(1000).await;
            n2.transmit(24).await;
        });
        assert_eq!(n.messages(), 2);
        assert_eq!(n.bytes(), 1024);
        assert_eq!(n.busy_micros(), 1_024);
    }
}
