//! The network model: a half-duplex shared wire (classic Ethernet) or,
//! optionally, a switched fabric with a full-duplex link per host.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use spritely_sim::{Resource, Sim, SimDuration};
use spritely_trace::{EventKind, Tracer};

/// Network timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// Fixed per-message latency (propagation + protocol stack), charged
    /// after the wire is released.
    pub latency: SimDuration,
    /// Wire bandwidth in bytes per second (per link when `switched`).
    pub bandwidth: u64,
    /// False models the paper's shared-bus Ethernet: every message in
    /// either direction serializes on one medium. True models a switched
    /// fabric: each host gets a full-duplex link (one lane per direction),
    /// so only messages sharing a host *and* a direction serialize.
    pub switched: bool,
}

impl NetParams {
    /// Parameters approximating the paper's 10 Mbit/s Ethernet.
    pub fn ethernet_10mbit() -> Self {
        NetParams {
            latency: SimDuration::from_micros(700),
            bandwidth: 1_250_000,
            switched: false,
        }
    }

    /// The same link timing, but switched full-duplex per host.
    pub fn switched_full_duplex(self) -> Self {
        NetParams {
            switched: true,
            ..self
        }
    }

    /// Time a message of `bytes` occupies the wire.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.bandwidth == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros((bytes as u64 * 1_000_000).div_ceil(self.bandwidth))
    }
}

struct NetworkInner {
    sim: Sim,
    name: String,
    /// The shared medium (used when `params.switched` is false).
    wire: Resource,
    /// Per-`(host, to_server)` lanes, created on first use (switched mode).
    links: RefCell<HashMap<(u32, bool), Resource>>,
    params: NetParams,
    messages: Cell<u64>,
    bytes: Cell<u64>,
    tracer: RefCell<Option<Tracer>>,
}

/// A network segment. Messages pay a transfer time (size / bandwidth,
/// serialized on the relevant wire resource) plus a fixed off-wire
/// latency. Cheap to clone; clones share the wire and the counters.
#[derive(Clone)]
pub struct Network {
    inner: Rc<NetworkInner>,
}

impl Network {
    /// Creates a network segment.
    pub fn new(sim: &Sim, name: impl Into<String>, params: NetParams) -> Self {
        let name = name.into();
        Network {
            inner: Rc::new(NetworkInner {
                sim: sim.clone(),
                wire: Resource::new(sim, name.clone(), 1),
                name,
                links: RefCell::new(HashMap::new()),
                params,
                messages: Cell::new(0),
                bytes: Cell::new(0),
                tracer: RefCell::new(None),
            }),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> NetParams {
        self.inner.params
    }

    /// The shared wire resource (for utilization reporting).
    pub fn wire(&self) -> &Resource {
        &self.inner.wire
    }

    /// Attaches a tracer: every transmitted message is recorded as a
    /// `net_xmit` event.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.inner.tracer.borrow_mut() = Some(tracer);
    }

    /// Messages transmitted so far (every request, reply, or compound
    /// batch counts as one).
    pub fn messages(&self) -> u64 {
        self.inner.messages.get()
    }

    /// Bytes transmitted so far.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.get()
    }

    /// Total microseconds the medium has been busy transferring. On a
    /// shared bus this is the busy time of the single wire; on a switched
    /// fabric it is the aggregate across all lanes (and can exceed
    /// elapsed time).
    pub fn busy_micros(&self) -> u128 {
        if self.inner.params.switched {
            self.inner
                .links
                .borrow()
                .values()
                .map(|r| r.busy_permit_micros())
                .sum()
        } else {
            self.inner.wire.busy_permit_micros()
        }
    }

    fn lane(&self, host: u32, to_server: bool) -> Resource {
        let mut links = self.inner.links.borrow_mut();
        links
            .entry((host, to_server))
            .or_insert_with(|| {
                let dir = if to_server { "up" } else { "down" };
                Resource::new(
                    &self.inner.sim,
                    format!("{}-h{host}-{dir}", self.inner.name),
                    1,
                )
            })
            .clone()
    }

    /// Transmits one message of `bytes` on the shared medium (host 0,
    /// client→server direction when switched).
    pub async fn transmit(&self, bytes: usize) {
        self.transmit_from(0, true, bytes).await;
    }

    /// Transmits one message of `bytes`: queues for the wire (the shared
    /// bus, or host `host`'s directional lane when switched), occupies it
    /// for the transfer time, then waits the fixed latency.
    pub async fn transmit_from(&self, host: u32, to_server: bool, bytes: usize) {
        let inner = &self.inner;
        inner.messages.set(inner.messages.get() + 1);
        inner.bytes.set(inner.bytes.get() + bytes as u64);
        if let Some(t) = inner.tracer.borrow().as_ref() {
            t.emit(
                0,
                EventKind::NetXmit {
                    host,
                    to_server,
                    bytes: bytes as u64,
                },
            );
        }
        let t = inner.params.transfer_time(bytes);
        if !t.is_zero() {
            let wire = if inner.params.switched {
                self.lane(host, to_server)
            } else {
                inner.wire.clone()
            };
            let guard = wire.acquire().await;
            inner.sim.sleep(t).await;
            drop(guard);
        }
        if !inner.params.latency.is_zero() {
            inner.sim.sleep(inner.params.latency).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> NetParams {
        NetParams {
            latency: SimDuration::from_micros(500),
            bandwidth: 1_000_000,
            switched: false,
        }
    }

    fn net(sim: &Sim) -> Network {
        Network::new(sim, "eth0", params())
    }

    #[test]
    fn message_time_is_transfer_plus_latency() {
        let sim = Sim::new();
        let n = net(&sim);
        sim.block_on(async move {
            n.transmit(1000).await; // 1 ms transfer + 0.5 ms latency
        });
        assert_eq!(sim.now().as_micros(), 1_500);
    }

    #[test]
    fn concurrent_messages_serialize_on_wire_but_overlap_latency() {
        let sim = Sim::new();
        let n = net(&sim);
        for _ in 0..2 {
            let n = n.clone();
            sim.spawn(async move {
                n.transmit(1000).await;
            });
        }
        sim.run_to_quiescence();
        // Transfers serialize (1 ms + 1 ms); the second message's latency
        // starts at 2 ms, so total is 2.5 ms (latencies overlap).
        assert_eq!(sim.now().as_micros(), 2_500);
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let sim = Sim::new();
        let n = net(&sim);
        sim.block_on(async move {
            n.transmit(0).await;
        });
        assert_eq!(sim.now().as_micros(), 500);
    }

    #[test]
    fn ethernet_params_sane() {
        let p = NetParams::ethernet_10mbit();
        // A 4 KB block takes ~3.3 ms on a 10 Mbit wire.
        let t = p.transfer_time(4096);
        assert!(t.as_micros() > 3_000 && t.as_micros() < 3_600, "{t}");
    }

    #[test]
    fn switched_links_do_not_serialize_across_hosts() {
        let sim = Sim::new();
        let n = Network::new(&sim, "sw0", params().switched_full_duplex());
        for host in 0..2 {
            let n = n.clone();
            sim.spawn(async move {
                n.transmit_from(host, true, 1000).await;
            });
        }
        sim.run_to_quiescence();
        // Each host has its own lane: both transfers overlap fully.
        assert_eq!(sim.now().as_micros(), 1_500);
    }

    #[test]
    fn switched_same_lane_still_serializes() {
        let sim = Sim::new();
        let n = Network::new(&sim, "sw0", params().switched_full_duplex());
        for _ in 0..2 {
            let n = n.clone();
            sim.spawn(async move {
                n.transmit_from(1, true, 1000).await;
            });
        }
        sim.run_to_quiescence();
        assert_eq!(sim.now().as_micros(), 2_500);
    }

    #[test]
    fn full_duplex_directions_overlap() {
        let sim = Sim::new();
        let n = Network::new(&sim, "sw0", params().switched_full_duplex());
        for dir in [true, false] {
            let n = n.clone();
            sim.spawn(async move {
                n.transmit_from(1, dir, 1000).await;
            });
        }
        sim.run_to_quiescence();
        assert_eq!(sim.now().as_micros(), 1_500);
    }

    #[test]
    fn counters_track_messages_and_bytes() {
        let sim = Sim::new();
        let n = net(&sim);
        let n2 = n.clone();
        sim.block_on(async move {
            n2.transmit(1000).await;
            n2.transmit(24).await;
        });
        assert_eq!(n.messages(), 2);
        assert_eq!(n.bytes(), 1024);
        assert_eq!(n.busy_micros(), 1_024);
    }
}
