//! The shared-wire network model.

use spritely_sim::{Resource, Sim, SimDuration};

/// Network timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// Fixed per-message latency (propagation + protocol stack), charged
    /// after the wire is released.
    pub latency: SimDuration,
    /// Wire bandwidth in bytes per second.
    pub bandwidth: u64,
}

impl NetParams {
    /// Parameters approximating the paper's 10 Mbit/s Ethernet.
    pub fn ethernet_10mbit() -> Self {
        NetParams {
            latency: SimDuration::from_micros(700),
            bandwidth: 1_250_000,
        }
    }

    /// Time a message of `bytes` occupies the wire.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.bandwidth == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros((bytes as u64 * 1_000_000).div_ceil(self.bandwidth))
    }
}

/// A half-duplex shared wire (classic Ethernet): messages in either
/// direction serialize on the medium; latency accrues off-wire.
#[derive(Clone)]
pub struct Network {
    sim: Sim,
    wire: Resource,
    params: NetParams,
}

impl Network {
    /// Creates a network segment.
    pub fn new(sim: &Sim, name: impl Into<String>, params: NetParams) -> Self {
        Network {
            sim: sim.clone(),
            wire: Resource::new(sim, name, 1),
            params,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> NetParams {
        self.params
    }

    /// The wire resource (for utilization reporting).
    pub fn wire(&self) -> &Resource {
        &self.wire
    }

    /// Transmits one message of `bytes`: queues for the wire, occupies it
    /// for the transfer time, then waits the fixed latency.
    pub async fn transmit(&self, bytes: usize) {
        let t = self.params.transfer_time(bytes);
        if !t.is_zero() {
            let guard = self.wire.acquire().await;
            self.sim.sleep(t).await;
            drop(guard);
        }
        if !self.params.latency.is_zero() {
            self.sim.sleep(self.params.latency).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(sim: &Sim) -> Network {
        Network::new(
            sim,
            "eth0",
            NetParams {
                latency: SimDuration::from_micros(500),
                bandwidth: 1_000_000,
            },
        )
    }

    #[test]
    fn message_time_is_transfer_plus_latency() {
        let sim = Sim::new();
        let n = net(&sim);
        sim.block_on(async move {
            n.transmit(1000).await; // 1 ms transfer + 0.5 ms latency
        });
        assert_eq!(sim.now().as_micros(), 1_500);
    }

    #[test]
    fn concurrent_messages_serialize_on_wire_but_overlap_latency() {
        let sim = Sim::new();
        let n = net(&sim);
        for _ in 0..2 {
            let n = n.clone();
            sim.spawn(async move {
                n.transmit(1000).await;
            });
        }
        sim.run_to_quiescence();
        // Transfers serialize (1 ms + 1 ms); the second message's latency
        // starts at 2 ms, so total is 2.5 ms (latencies overlap).
        assert_eq!(sim.now().as_micros(), 2_500);
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let sim = Sim::new();
        let n = net(&sim);
        sim.block_on(async move {
            n.transmit(0).await;
        });
        assert_eq!(sim.now().as_micros(), 500);
    }

    #[test]
    fn ethernet_params_sane() {
        let p = NetParams::ethernet_10mbit();
        // A 4 KB block takes ~3.3 ms on a 10 Mbit wire.
        let t = p.transfer_time(4096);
        assert!(t.as_micros() > 3_000 && t.as_micros() < 3_600, "{t}");
    }
}
