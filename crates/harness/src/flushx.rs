//! Write-behind flush microbenchmark: how fast can a client push a
//! dirty file back to the server?
//!
//! Dirties a file of `blocks` cache blocks on an SNFS client, then
//! times an `fsync` — the flush travels through the write-behind pool,
//! so this measures the gathering + pipelining win directly (paper-mode
//! defaults reproduce the serial one-block-per-RPC flush).

use spritely_core::WriteBehindParams;
use spritely_proto::{NfsProc, BLOCK_SIZE};
use spritely_sim::SimDuration;
use spritely_vfs::OpenFlags;

use crate::testbed::{Protocol, RemoteClient, Testbed, TestbedParams};

/// Result of one flush-latency point.
pub struct FlushRun {
    /// Display label ("paper", "pipelined", ...).
    pub label: &'static str,
    /// Pool configuration used.
    pub write_behind: WriteBehindParams,
    /// Blocks dirtied before the flush.
    pub dirty_blocks: usize,
    /// Simulated time the `fsync` took.
    pub flush_time: SimDuration,
    /// `write` RPCs the flush issued.
    pub write_rpcs: u64,
    /// Mean blocks per write-back RPC (gathering factor).
    pub mean_batch: f64,
    /// Peak concurrent write-back RPCs (pipelining depth).
    pub peak_inflight: u64,
    /// Write-back RPCs that failed (should be 0 here).
    pub writeback_failures: u64,
    /// End-to-end RPC latency per procedure during the run.
    pub latency: spritely_metrics::LatencyStats,
    /// Unified end-of-run statistics snapshot (serializable).
    pub stats: crate::snapshot::StatsSnapshot,
    /// Checked event trace (present when `TestbedParams::trace` was on).
    pub trace: Option<crate::snapshot::TraceReport>,
}

/// Dirties `blocks` blocks of one SNFS file and times the `fsync` that
/// flushes them, under the given write-behind configuration.
pub fn run_flush(label: &'static str, write_behind: WriteBehindParams, blocks: usize) -> FlushRun {
    run_flush_with(
        label,
        TestbedParams {
            protocol: Protocol::Snfs,
            // No update daemons: the fsync is the only flush.
            update_enabled: false,
            write_behind,
            ..TestbedParams::default()
        },
        blocks,
    )
}

/// [`run_flush`] with full control of the testbed (e.g. tracing on).
pub fn run_flush_with(label: &'static str, params: TestbedParams, blocks: usize) -> FlushRun {
    let write_behind = params.write_behind;
    let tb = Testbed::build(params);
    let ops_before = tb.counter.snapshot();
    let p = tb.proc();
    let sim = tb.sim.clone();
    let h = tb.sim.spawn(async move {
        let fd = p
            .open("/remote/flushprobe", OpenFlags::create_write())
            .await
            .expect("create probe file");
        let chunk = vec![0xA5u8; BLOCK_SIZE];
        for i in 0..blocks {
            p.write_at(fd, (i * BLOCK_SIZE) as u64, &chunk)
                .await
                .expect("dirty a block");
        }
        let start = sim.now();
        p.fsync(fd).await.expect("fsync");
        let flush_time = sim.now().saturating_duration_since(start);
        p.close(fd).await.expect("close");
        flush_time
    });
    let flush_time = tb.sim.run_until(h);
    let RemoteClient::Snfs(client) = &tb.clients[0].remote else {
        unreachable!("flush probe runs over SNFS");
    };
    let ops = tb.counter.snapshot() - ops_before;
    FlushRun {
        label,
        write_behind,
        dirty_blocks: blocks,
        flush_time,
        write_rpcs: ops.get(NfsProc::Write),
        mean_batch: client.gather_histogram().mean(),
        peak_inflight: client.inflight_gauge().peak(),
        writeback_failures: client.stats().writeback_failures,
        latency: tb.latency.clone(),
        stats: tb.stats_snapshot(),
        trace: tb.finish_trace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mode_flush_is_serial_one_block_rpcs() {
        let run = run_flush("paper", WriteBehindParams::default(), 16);
        assert_eq!(run.write_rpcs, 16, "one RPC per block");
        assert!((run.mean_batch - 1.0).abs() < 1e-9, "no gathering");
        assert_eq!(run.peak_inflight, 1, "no pipelining");
        assert_eq!(run.writeback_failures, 0);
    }

    #[test]
    fn pipelined_flush_gathers_and_overlaps() {
        let run = run_flush("pipelined", WriteBehindParams::pipelined(), 64);
        assert!(
            run.write_rpcs <= 64 / 8 + 1,
            "gathering collapses RPC count, got {}",
            run.write_rpcs
        );
        assert!(
            run.mean_batch > 4.0,
            "mean batch {} too small",
            run.mean_batch
        );
        assert!(run.peak_inflight >= 2, "no overlap observed");
        assert_eq!(run.writeback_failures, 0);
    }

    #[test]
    fn pipelined_flush_at_least_twice_as_fast() {
        let serial = run_flush("paper", WriteBehindParams::default(), 64);
        let piped = run_flush("pipelined", WriteBehindParams::pipelined(), 64);
        assert!(
            piped.flush_time.as_secs_f64() * 2.0 <= serial.flush_time.as_secs_f64(),
            "pipelined {} vs serial {}",
            piped.flush_time,
            serial.flush_time
        );
    }
}
