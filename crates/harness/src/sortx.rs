//! Sort-benchmark experiment runner (Tables 5-3/5-4/5-5/5-6).

use spritely_metrics::OpCounts;
use spritely_sim::SimDuration;
use spritely_workloads::{populate_sort_input, run_sort, SortConfig, SortParams};

use crate::testbed::{Protocol, Testbed, TestbedParams};

/// Everything measured from one sort run.
pub struct SortRun {
    /// Protocol hosting `/usr/tmp`.
    pub protocol: Protocol,
    /// Input size in bytes.
    pub input_bytes: u64,
    /// Were the 30 s update daemons running? (`false` = infinite
    /// write-delay, Tables 5-5/5-6.)
    pub update_enabled: bool,
    /// Elapsed virtual time of the sort.
    pub elapsed: SimDuration,
    /// Per-procedure RPC counts during the sort.
    pub ops: OpCounts,
    /// Client-local disk writes during the sort (the "local" cost floor).
    pub client_disk_writes: u64,
    /// Unified end-of-run statistics snapshot (serializable).
    pub stats: crate::snapshot::StatsSnapshot,
    /// Checked event trace (present when `TestbedParams::trace` was on).
    pub trace: Option<crate::snapshot::TraceReport>,
}

/// Runs the sort benchmark once on a fresh testbed.
///
/// The input and output files live on the client's local disk in every
/// configuration; only `/usr/tmp` (temp files) moves between local disk,
/// NFS, and SNFS — matching §5.3.
pub fn run_sort_experiment(protocol: Protocol, input_bytes: u64, update_enabled: bool) -> SortRun {
    run_sort_with(
        TestbedParams {
            protocol,
            tmp_remote: true,
            update_enabled,
            ..TestbedParams::default()
        },
        input_bytes,
    )
}

/// [`run_sort_experiment`] with full control of the testbed (for
/// ablations).
pub fn run_sort_with(params: TestbedParams, input_bytes: u64) -> SortRun {
    let protocol = params.protocol;
    let update_enabled = params.update_enabled;
    let tb = Testbed::build(params);
    let cfg = SortConfig {
        input_path: "/input".to_string(),
        output_path: "/output".to_string(),
        tmp_dir: "/usr/tmp".to_string(),
    };
    // Setup (untimed): create the input on the local disk, then flush it
    // so the benchmark starts from a quiet system.
    {
        let p = tb.proc();
        let path = cfg.input_path.clone();
        let fs = tb.clients[0].local_fs.clone();
        let h = tb.sim.spawn(async move {
            populate_sort_input(&p, &path, input_bytes)
                .await
                .expect("populate input");
            fs.sync_all().await;
        });
        tb.sim.run_until(h);
    }
    let ops_before = tb.counter.snapshot();
    let disk_before = tb.clients[0].local_fs.disk().stats().writes;
    let p = tb.proc();
    let cfg2 = cfg.clone();
    let h = tb.sim.spawn(async move {
        run_sort(&p, SortParams::paper(input_bytes), &cfg2)
            .await
            .expect("sort run")
    });
    let elapsed = tb.sim.run_until(h);
    SortRun {
        protocol,
        input_bytes,
        update_enabled,
        elapsed,
        ops: tb.counter.snapshot() - ops_before,
        client_disk_writes: tb.clients[0].local_fs.disk().stats().writes - disk_before,
        stats: tb.stats_snapshot(),
        trace: tb.finish_trace(),
    }
}
