//! Server-scaling experiment (paper §2.3): "Reducing server writes ...
//! should ... increase the number of clients that can actively use a
//! single server". Sprite measurements suggested ~4× the client capacity
//! of NFS on identical hardware; this experiment measures how makespan
//! and server utilization grow as identical clients are added.

use spritely_metrics::OpCounts;
use spritely_sim::SimDuration;
use spritely_workloads::{AndrewBenchmark, AndrewConfig, AndrewParams};

use crate::testbed::{Protocol, Testbed, TestbedParams};

/// Results of one scaling point.
pub struct ScalingRun {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Number of concurrently active clients.
    pub clients: usize,
    /// Time until the *last* client finished.
    pub makespan: SimDuration,
    /// Mean per-client elapsed time.
    pub mean_client: SimDuration,
    /// Mean server CPU utilization over the makespan.
    pub server_util: f64,
    /// Server disk writes during the run.
    pub disk_writes: u64,
    /// RPC counts during the run.
    pub ops: OpCounts,
    /// Server block-cache (hits, misses) during the run.
    pub server_cache: (u64, u64),
    /// Peak server disk-queue depth (whole run, setup included — the
    /// gauge has no reset).
    pub disk_queue_peak: u64,
    /// Mean per-request disk queue wait during the run, in ms.
    pub disk_wait_ms_mean: f64,
    /// Mean per-request arm positioning time during the run, in ms.
    pub disk_pos_ms_mean: f64,
    /// End-to-end RPC latency per procedure (whole run, setup included —
    /// the recorder has no reset).
    pub latency: spritely_metrics::LatencyStats,
    /// Unified end-of-run statistics snapshot (serializable).
    pub stats: crate::snapshot::StatsSnapshot,
    /// Checked event trace (present when `TestbedParams::trace` was on).
    pub trace: Option<crate::snapshot::TraceReport>,
}

/// A compact per-client workload: a scaled-down Andrew benchmark in a
/// private namespace (every client is a "diskless workstation" with /tmp
/// on the server).
fn small_andrew() -> AndrewParams {
    AndrewParams {
        dirs: 3,
        c_files: 6,
        h_files: 8,
        misc_files: 10,
        total_bytes: 160 * 1024,
        headers_per_compile: 4,
        compile_cpu_per_kb: SimDuration::from_millis(120),
        obj_ratio: 1.2,
        tmp_ratio: 3.0,
    }
}

/// Runs `n_clients` identical workloads concurrently against one server.
pub fn run_scaling(protocol: Protocol, n_clients: usize, seed: u64) -> ScalingRun {
    run_scaling_with(
        TestbedParams {
            protocol,
            tmp_remote: true,
            ..TestbedParams::default()
        },
        n_clients,
        seed,
    )
}

/// [`run_scaling`] with full control of the testbed — used to compare
/// server I/O configurations ([`spritely_core::ServerIoParams`]) at a
/// fixed protocol and client count.
pub fn run_scaling_with(params: TestbedParams, n_clients: usize, seed: u64) -> ScalingRun {
    let protocol = params.protocol;
    let tb = Testbed::build_with_clients(params, n_clients);
    // Setup: per-client namespaces and source trees (untimed).
    {
        let mut handles = Vec::new();
        for (i, host) in tb.clients.iter().enumerate() {
            let p = host.proc(&tb.sim);
            let bench = AndrewBenchmark::new(seed + i as u64, small_andrew());
            handles.push(tb.sim.spawn(async move {
                p.mkdir(&format!("/remote/u{i}"))
                    .await
                    .expect("mk user dir");
                p.mkdir(&format!("/usr/tmp/u{i}"))
                    .await
                    .expect("mk tmp dir");
                bench
                    .populate_source(&p, &format!("/remote/u{i}/src"))
                    .await
                    .expect("populate");
            }));
        }
        for h in handles {
            tb.sim.run_until(h);
        }
        // Drain setup write-backs and start cold.
        let sim = tb.sim.clone();
        let h = tb
            .sim
            .spawn(async move { sim.sleep(SimDuration::from_secs(65)).await });
        tb.sim.run_until(h);
        for host in &tb.clients {
            match host.remote.clone() {
                crate::RemoteClient::None => {}
                crate::RemoteClient::Nfs(c) => {
                    let h = tb.sim.spawn(async move {
                        c.cold_boot().await.expect("cold boot");
                    });
                    tb.sim.run_until(h);
                }
                crate::RemoteClient::Snfs(c) => {
                    let h = tb.sim.spawn(async move {
                        c.cold_boot().await.expect("cold boot");
                    });
                    tb.sim.run_until(h);
                }
            }
        }
    }
    // Measured run: all clients at once.
    let t0 = tb.sim.now();
    let ops_before = tb.counter.snapshot();
    let disk_before = tb.server_fs.disk().stats().writes;
    let busy_before = tb.server_cpu.busy_permit_micros();
    let cache_before = tb.server_fs.cache_stats();
    let wait_mark = tb.server_fs.disk().wait_ms().mark();
    let pos_mark = tb.server_fs.disk().pos_ms().mark();
    let mut handles = Vec::new();
    for (i, host) in tb.clients.iter().enumerate() {
        let p = host.proc(&tb.sim);
        let bench = AndrewBenchmark::new(seed + i as u64, small_andrew());
        let cfg = AndrewConfig {
            src_base: format!("/remote/u{i}/src"),
            target_base: format!("/remote/u{i}/target"),
            tmp_base: format!("/usr/tmp/u{i}"),
        };
        let sim = tb.sim.clone();
        handles.push(tb.sim.spawn(async move {
            let start = sim.now();
            bench.run(&p, &cfg).await.expect("client workload");
            sim.now().duration_since(start)
        }));
    }
    let mut elapsed: Vec<SimDuration> = Vec::new();
    for h in handles {
        elapsed.push(tb.sim.run_until(h));
    }
    let makespan = tb.sim.now().duration_since(t0);
    let total: SimDuration = elapsed.iter().copied().sum();
    let busy = tb.server_cpu.busy_permit_micros() - busy_before;
    let cache_after = tb.server_fs.cache_stats();
    let disk = tb.server_fs.disk();
    ScalingRun {
        protocol,
        clients: n_clients,
        makespan,
        mean_client: total / n_clients as u64,
        server_util: busy as f64 / makespan.as_micros() as f64,
        disk_writes: disk.stats().writes - disk_before,
        ops: tb.counter.snapshot() - ops_before,
        server_cache: (
            cache_after.0 - cache_before.0,
            cache_after.1 - cache_before.1,
        ),
        disk_queue_peak: disk.queue_depth().peak(),
        disk_wait_ms_mean: disk.wait_ms().mean_since(wait_mark),
        disk_pos_ms_mean: disk.pos_ms().mean_since(pos_mark),
        latency: tb.latency.clone(),
        stats: tb.stats_snapshot(),
        trace: tb.finish_trace(),
    }
}
