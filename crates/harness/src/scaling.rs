//! Server-scaling experiment (paper §2.3): "Reducing server writes ...
//! should ... increase the number of clients that can actively use a
//! single server". Sprite measurements suggested ~4× the client capacity
//! of NFS on identical hardware; this experiment measures how makespan
//! and server utilization grow as identical clients are added.

use spritely_metrics::OpCounts;
use spritely_sim::SimDuration;
use spritely_workloads::{AndrewBenchmark, AndrewConfig, AndrewParams};

use crate::testbed::{Protocol, Testbed, TestbedParams};

/// Results of one scaling point.
pub struct ScalingRun {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Number of concurrently active clients.
    pub clients: usize,
    /// Time until the *last* client finished.
    pub makespan: SimDuration,
    /// Mean per-client elapsed time.
    pub mean_client: SimDuration,
    /// Mean server CPU utilization over the makespan.
    pub server_util: f64,
    /// Server disk writes during the run.
    pub disk_writes: u64,
    /// RPC counts during the run.
    pub ops: OpCounts,
}

/// A compact per-client workload: a scaled-down Andrew benchmark in a
/// private namespace (every client is a "diskless workstation" with /tmp
/// on the server).
fn small_andrew() -> AndrewParams {
    AndrewParams {
        dirs: 3,
        c_files: 6,
        h_files: 8,
        misc_files: 10,
        total_bytes: 160 * 1024,
        headers_per_compile: 4,
        compile_cpu_per_kb: SimDuration::from_millis(120),
        obj_ratio: 1.2,
        tmp_ratio: 3.0,
    }
}

/// Runs `n_clients` identical workloads concurrently against one server.
pub fn run_scaling(protocol: Protocol, n_clients: usize, seed: u64) -> ScalingRun {
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol,
            tmp_remote: true,
            ..TestbedParams::default()
        },
        n_clients,
    );
    // Setup: per-client namespaces and source trees (untimed).
    {
        let mut handles = Vec::new();
        for (i, host) in tb.clients.iter().enumerate() {
            let p = host.proc(&tb.sim);
            let bench = AndrewBenchmark::new(seed + i as u64, small_andrew());
            handles.push(tb.sim.spawn(async move {
                p.mkdir(&format!("/remote/u{i}"))
                    .await
                    .expect("mk user dir");
                p.mkdir(&format!("/usr/tmp/u{i}"))
                    .await
                    .expect("mk tmp dir");
                bench
                    .populate_source(&p, &format!("/remote/u{i}/src"))
                    .await
                    .expect("populate");
            }));
        }
        for h in handles {
            tb.sim.run_until(h);
        }
        // Drain setup write-backs and start cold.
        let sim = tb.sim.clone();
        let h = tb
            .sim
            .spawn(async move { sim.sleep(SimDuration::from_secs(65)).await });
        tb.sim.run_until(h);
        for host in &tb.clients {
            match host.remote.clone() {
                crate::RemoteClient::None => {}
                crate::RemoteClient::Nfs(c) => {
                    let h = tb.sim.spawn(async move {
                        c.cold_boot().await.expect("cold boot");
                    });
                    tb.sim.run_until(h);
                }
                crate::RemoteClient::Snfs(c) => {
                    let h = tb.sim.spawn(async move {
                        c.cold_boot().await.expect("cold boot");
                    });
                    tb.sim.run_until(h);
                }
            }
        }
    }
    // Measured run: all clients at once.
    let t0 = tb.sim.now();
    let ops_before = tb.counter.snapshot();
    let disk_before = tb.server_fs.disk().stats().writes;
    let busy_before = tb.server_cpu.busy_permit_micros();
    let mut handles = Vec::new();
    for (i, host) in tb.clients.iter().enumerate() {
        let p = host.proc(&tb.sim);
        let bench = AndrewBenchmark::new(seed + i as u64, small_andrew());
        let cfg = AndrewConfig {
            src_base: format!("/remote/u{i}/src"),
            target_base: format!("/remote/u{i}/target"),
            tmp_base: format!("/usr/tmp/u{i}"),
        };
        let sim = tb.sim.clone();
        handles.push(tb.sim.spawn(async move {
            let start = sim.now();
            bench.run(&p, &cfg).await.expect("client workload");
            sim.now().duration_since(start)
        }));
    }
    let mut elapsed: Vec<SimDuration> = Vec::new();
    for h in handles {
        elapsed.push(tb.sim.run_until(h));
    }
    let makespan = tb.sim.now().duration_since(t0);
    let total: SimDuration = elapsed.iter().copied().sum();
    let busy = tb.server_cpu.busy_permit_micros() - busy_before;
    ScalingRun {
        protocol,
        clients: n_clients,
        makespan,
        mean_client: total / n_clients as u64,
        server_util: busy as f64 / makespan.as_micros() as f64,
        disk_writes: tb.server_fs.disk().stats().writes - disk_before,
        ops: tb.counter.snapshot() - ops_before,
    }
}
