//! Server-scaling experiment (paper §2.3): "Reducing server writes ...
//! should ... increase the number of clients that can actively use a
//! single server". Sprite measurements suggested ~4× the client capacity
//! of NFS on identical hardware; this experiment measures how makespan
//! and server utilization grow as identical clients are added.

use spritely_metrics::OpCounts;
use spritely_sim::SimDuration;
use spritely_workloads::{AndrewBenchmark, AndrewConfig, AndrewParams};

use crate::testbed::{Protocol, ShardParams, Testbed, TestbedParams};

/// Results of one scaling point.
pub struct ScalingRun {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Number of concurrently active clients.
    pub clients: usize,
    /// Time until the *last* client finished.
    pub makespan: SimDuration,
    /// Mean per-client elapsed time.
    pub mean_client: SimDuration,
    /// Mean server CPU utilization over the makespan.
    pub server_util: f64,
    /// Server disk writes during the run.
    pub disk_writes: u64,
    /// RPC counts during the run.
    pub ops: OpCounts,
    /// Server block-cache (hits, misses) during the run.
    pub server_cache: (u64, u64),
    /// Peak server disk-queue depth (whole run, setup included — the
    /// gauge has no reset).
    pub disk_queue_peak: u64,
    /// Mean per-request disk queue wait during the run, in ms.
    pub disk_wait_ms_mean: f64,
    /// Mean per-request arm positioning time during the run, in ms.
    pub disk_pos_ms_mean: f64,
    /// End-to-end RPC latency per procedure (whole run, setup included —
    /// the recorder has no reset).
    pub latency: spritely_metrics::LatencyStats,
    /// Unified end-of-run statistics snapshot (serializable).
    pub stats: crate::snapshot::StatsSnapshot,
    /// Checked event trace (present when `TestbedParams::trace` was on).
    pub trace: Option<crate::snapshot::TraceReport>,
}

/// A compact per-client workload: a scaled-down Andrew benchmark in a
/// private namespace (every client is a "diskless workstation" with /tmp
/// on the server).
fn small_andrew() -> AndrewParams {
    AndrewParams {
        dirs: 3,
        c_files: 6,
        h_files: 8,
        misc_files: 10,
        total_bytes: 160 * 1024,
        headers_per_compile: 4,
        compile_cpu_per_kb: SimDuration::from_millis(120),
        obj_ratio: 1.2,
        tmp_ratio: 3.0,
    }
}

/// Runs `n_clients` identical workloads concurrently against one server.
pub fn run_scaling(protocol: Protocol, n_clients: usize, seed: u64) -> ScalingRun {
    run_scaling_with(
        TestbedParams {
            protocol,
            tmp_remote: true,
            ..TestbedParams::default()
        },
        n_clients,
        seed,
    )
}

/// [`run_scaling`] with full control of the testbed — used to compare
/// server I/O configurations ([`spritely_core::ServerIoParams`]) at a
/// fixed protocol and client count.
pub fn run_scaling_with(params: TestbedParams, n_clients: usize, seed: u64) -> ScalingRun {
    let protocol = params.protocol;
    let tb = Testbed::build_with_clients(params, n_clients);
    // Setup: per-client namespaces and source trees (untimed).
    {
        let mut handles = Vec::new();
        for (i, host) in tb.clients.iter().enumerate() {
            let p = host.proc(&tb.sim);
            let bench = AndrewBenchmark::new(seed + i as u64, small_andrew());
            handles.push(tb.sim.spawn(async move {
                p.mkdir(&format!("/remote/u{i}"))
                    .await
                    .expect("mk user dir");
                p.mkdir(&format!("/usr/tmp/u{i}"))
                    .await
                    .expect("mk tmp dir");
                bench
                    .populate_source(&p, &format!("/remote/u{i}/src"))
                    .await
                    .expect("populate");
            }));
        }
        for h in handles {
            tb.sim.run_until(h);
        }
        // Drain setup write-backs and start cold.
        let sim = tb.sim.clone();
        let h = tb
            .sim
            .spawn(async move { sim.sleep(SimDuration::from_secs(65)).await });
        tb.sim.run_until(h);
        for host in &tb.clients {
            match host.remote.clone() {
                crate::RemoteClient::None => {}
                crate::RemoteClient::Nfs(c) => {
                    let h = tb.sim.spawn(async move {
                        c.cold_boot().await.expect("cold boot");
                    });
                    tb.sim.run_until(h);
                }
                crate::RemoteClient::Snfs(c) => {
                    let h = tb.sim.spawn(async move {
                        c.cold_boot().await.expect("cold boot");
                    });
                    tb.sim.run_until(h);
                }
            }
        }
    }
    // Measured run: all clients at once.
    let t0 = tb.sim.now();
    let ops_before = tb.counter.snapshot();
    let disk_before = tb.server_fs.disk().stats().writes;
    let busy_before = tb.server_cpu.busy_permit_micros();
    let cache_before = tb.server_fs.cache_stats();
    let wait_mark = tb.server_fs.disk().wait_ms().mark();
    let pos_mark = tb.server_fs.disk().pos_ms().mark();
    let mut handles = Vec::new();
    for (i, host) in tb.clients.iter().enumerate() {
        let p = host.proc(&tb.sim);
        let bench = AndrewBenchmark::new(seed + i as u64, small_andrew());
        let cfg = AndrewConfig {
            src_base: format!("/remote/u{i}/src"),
            target_base: format!("/remote/u{i}/target"),
            tmp_base: format!("/usr/tmp/u{i}"),
        };
        let sim = tb.sim.clone();
        handles.push(tb.sim.spawn(async move {
            let start = sim.now();
            bench.run(&p, &cfg).await.expect("client workload");
            sim.now().duration_since(start)
        }));
    }
    let mut elapsed: Vec<SimDuration> = Vec::new();
    for h in handles {
        elapsed.push(tb.sim.run_until(h));
    }
    let makespan = tb.sim.now().duration_since(t0);
    let total: SimDuration = elapsed.iter().copied().sum();
    let busy = tb.server_cpu.busy_permit_micros() - busy_before;
    let cache_after = tb.server_fs.cache_stats();
    let disk = tb.server_fs.disk();
    ScalingRun {
        protocol,
        clients: n_clients,
        makespan,
        mean_client: total / n_clients as u64,
        server_util: busy as f64 / makespan.as_micros() as f64,
        disk_writes: disk.stats().writes - disk_before,
        ops: tb.counter.snapshot() - ops_before,
        server_cache: (
            cache_after.0 - cache_before.0,
            cache_after.1 - cache_before.1,
        ),
        disk_queue_peak: disk.queue_depth().peak(),
        disk_wait_ms_mean: disk.wait_ms().mean_since(wait_mark),
        disk_pos_ms_mean: disk.pos_ms().mean_since(pos_mark),
        latency: tb.latency.clone(),
        stats: tb.stats_snapshot(),
        trace: tb.finish_trace(),
    }
}

/// Results of one sharded scaling point (DESIGN.md §18.6).
pub struct ScalingShardsRun {
    /// Number of server shards (1 = the unsharded paper testbed).
    pub shards: usize,
    /// Number of concurrently active clients.
    pub clients: usize,
    /// Time until the last client finished its measured workload.
    pub makespan: SimDuration,
    /// RPCs served across all shards during the measured window.
    pub total_rpcs: u64,
    /// Aggregate served throughput, RPCs per simulated second.
    pub throughput: f64,
    /// RPCs served per shard during the measured window (one entry at
    /// `shards == 1`).
    pub per_shard_rpcs: Vec<u64>,
    /// Peak client block-cache footprint in KiB (0 when unsharded — the
    /// gauge ships with the shards snapshot section).
    pub peak_client_kb: u64,
    /// Unified end-of-run statistics snapshot (serializable).
    pub stats: crate::snapshot::StatsSnapshot,
}

/// Files each client writes, syncs and reads back in the measured phase.
const SHARD_SCALE_FILES: usize = 4;
/// Blocks per file.
const SHARD_SCALE_BLOCKS: usize = 2;

/// Runs the shared-nothing shard-scaling workload: `n_clients` SNFS
/// clients each own a private root-level subtree (`/remote/u{i}`, placed
/// on `default_shard("u{i}", n)`), and concurrently create, sync-write,
/// close, reopen and read back a small set of files there. No client
/// touches another's subtree, so aggregate throughput is bounded only by
/// server-side resources — one CPU and one disk per shard — and should
/// scale with the shard count until the wire saturates.
///
/// Throughput is measured as RPCs served across all shards per simulated
/// second of makespan. `n_shards == 1` builds the unsharded paper
/// testbed, making it the baseline the sharded points are compared
/// against.
pub fn run_scaling_shards(n_shards: usize, n_clients: usize, seed: u64) -> ScalingShardsRun {
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            shards: ShardParams::sharded(n_shards),
            ..TestbedParams::default()
        },
        n_clients,
    );
    // Setup (untimed): every client carves out its own root-level
    // subtree; the root name routes it to its owning shard.
    {
        let mut handles = Vec::new();
        for (i, host) in tb.clients.iter().enumerate() {
            let p = host.proc(&tb.sim);
            handles.push(tb.sim.spawn(async move {
                p.mkdir(&format!("/remote/u{i}"))
                    .await
                    .expect("mk user dir");
            }));
        }
        for h in handles {
            tb.sim.run_until(h);
        }
    }
    // Measured run: all clients at once, shared-nothing.
    let t0 = tb.sim.now();
    let shard_before: Vec<u64> = if tb.shard_hosts.is_empty() {
        vec![tb.counter.snapshot().total()]
    } else {
        tb.shard_hosts
            .iter()
            .map(|sh| sh.counter.snapshot().total())
            .collect()
    };
    let mut handles = Vec::new();
    for (i, host) in tb.clients.iter().enumerate() {
        let p = host.proc(&tb.sim);
        let sim = tb.sim.clone();
        handles.push(tb.sim.spawn(async move {
            // Stagger client starts by 25 ms: a perfectly synchronized
            // 512-client burst drives the transport into congestion
            // collapse (every walk times out, every retry re-offers the
            // full load), which no real fleet exhibits. The ramp is
            // deterministic and identical across shard counts, so the
            // comparison stays fair.
            sim.sleep(SimDuration::from_millis(25 * i as u64)).await;
            // Under heavy contention the transport's retransmission
            // ladder can give up before the server's queue drains; a
            // real client retries the system call, so the workload does
            // too. (Offsets are explicit so a retried write is
            // idempotent.) The backoff is jittered by client index and
            // grows with the attempt count: in a deterministic sim a
            // fixed shared delay keeps the whole herd phase-locked, and
            // the synchronized retry storm never drains.
            let backoff = |attempt: u64| {
                SimDuration::from_millis((50 + (i as u64 * 13) % 250) * attempt.min(48))
            };
            macro_rules! insist {
                ($e:expr) => {{
                    let mut attempt = 0u64;
                    loop {
                        match $e.await {
                            Ok(v) => break v,
                            Err(_) => {
                                attempt += 1;
                                sim.sleep(backoff(attempt)).await;
                            }
                        }
                    }
                }};
            }
            // `Proc::close` tears the fd down before the wire close, so
            // after a transport give-up a retry can only ever see
            // `Inval` — the fd is gone, and either the close executed or
            // the server reconciles the open count through its liveness
            // machinery. Treat that as closed rather than spinning.
            macro_rules! insist_close {
                ($fd:expr) => {{
                    let mut attempt = 0u64;
                    loop {
                        match p.close($fd).await {
                            Ok(()) | Err(spritely_proto::NfsStatus::Inval) => break,
                            Err(_) => {
                                attempt += 1;
                                sim.sleep(backoff(attempt)).await;
                            }
                        }
                    }
                }};
            }
            let fill = (seed as u8).wrapping_add(i as u8).wrapping_add(1);
            for f in 0..SHARD_SCALE_FILES {
                let path = format!("/remote/u{i}/f{f}");
                let fd = insist!(p.open(&path, spritely_vfs::OpenFlags::create_write()));
                let block = vec![fill.wrapping_add(f as u8); spritely_proto::BLOCK_SIZE];
                for b in 0..SHARD_SCALE_BLOCKS {
                    insist!(p.write_at(fd, (b * spritely_proto::BLOCK_SIZE) as u64, &block));
                }
                insist!(p.fsync(fd));
                insist_close!(fd);
                let fd = insist!(p.open(&path, spritely_vfs::OpenFlags::read()));
                let mut off = 0u64;
                loop {
                    let data = insist!(p.read_at(fd, off, spritely_proto::BLOCK_SIZE as u32));
                    if data.is_empty() {
                        break;
                    }
                    off += data.len() as u64;
                }
                insist_close!(fd);
            }
            // A rename inside the subtree: same-shard, no coordination.
            // Not idempotent across calls, so confirm the outcome at the
            // destination before retrying.
            let (from, to) = (format!("/remote/u{i}/f0"), format!("/remote/u{i}/g0"));
            let mut attempt = 0u64;
            loop {
                match p.rename(&from, &to).await {
                    Ok(()) => break,
                    Err(_) => {
                        if p.stat(&to).await.is_ok() {
                            break;
                        }
                        attempt += 1;
                        sim.sleep(backoff(attempt)).await;
                    }
                }
            }
        }));
    }
    for h in handles {
        tb.sim.run_until(h);
    }
    let makespan = tb.sim.now().duration_since(t0);
    let per_shard_rpcs: Vec<u64> = if tb.shard_hosts.is_empty() {
        vec![tb.counter.snapshot().total() - shard_before[0]]
    } else {
        tb.shard_hosts
            .iter()
            .zip(&shard_before)
            .map(|(sh, b)| sh.counter.snapshot().total() - b)
            .collect()
    };
    let total_rpcs: u64 = per_shard_rpcs.iter().sum();
    let stats = tb.stats_snapshot();
    ScalingShardsRun {
        shards: n_shards,
        clients: n_clients,
        makespan,
        total_rpcs,
        throughput: total_rpcs as f64 / makespan.as_secs_f64(),
        per_shard_rpcs,
        peak_client_kb: stats.shards.as_ref().map_or(0, |s| s.peak_client_kb),
        stats,
    }
}
