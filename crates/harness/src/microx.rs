//! Microbenchmark runners (§5.3 probe, temp-lifetime sweep).

use spritely_metrics::OpCounts;
use spritely_sim::SimDuration;
use spritely_workloads::{temp_file_lifetime, write_close_reopen_read, ReopenResult};

use crate::testbed::{Protocol, Testbed, TestbedParams};

/// Result of the §5.3 write-close-reopen-read probe.
pub struct ReopenRun {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Reading the *same* file after close vs. a different one.
    pub same_file: bool,
    /// Timing of the write and read halves.
    pub result: ReopenResult,
    /// RPC counts during the probe.
    pub ops: OpCounts,
}

/// Runs the §5.3 microbenchmark: write `bytes`, close, reopen and read
/// either the same file or a different (pre-existing) one.
pub fn run_reopen(protocol: Protocol, same_file: bool, bytes: u64) -> ReopenRun {
    let tb = Testbed::build(TestbedParams {
        protocol,
        ..TestbedParams::default()
    });
    // Pre-create the "other" file when needed.
    if !same_file {
        let p = tb.proc();
        let h = tb.sim.spawn(async move {
            let r = write_close_reopen_read(&p, "/remote/other", None, bytes).await;
            r.expect("pre-create other file");
        });
        tb.sim.run_until(h);
    }
    let ops_before = tb.counter.snapshot();
    let p = tb.proc();
    let h = tb.sim.spawn(async move {
        let other = if same_file {
            None
        } else {
            Some("/remote/other")
        };
        write_close_reopen_read(&p, "/remote/probe", other, bytes)
            .await
            .expect("probe run")
    });
    let result = tb.sim.run_until(h);
    ReopenRun {
        protocol,
        same_file,
        result,
        ops: tb.counter.snapshot() - ops_before,
    }
}

/// Result of one temp-file lifetime point.
pub struct TempLifetimeRun {
    /// Protocol hosting the temp file.
    pub protocol: Protocol,
    /// How long the file lived before deletion.
    pub lifetime: SimDuration,
    /// `write` RPCs that reached the server.
    pub write_rpcs: u64,
}

/// Creates a temp file of `bytes` on the remote mount, lets it live for
/// `lifetime`, deletes it, then lets daemons settle — measuring how many
/// write RPCs escaped to the server (§5.4's mechanism, parameterized).
pub fn run_temp_lifetime(protocol: Protocol, bytes: u64, lifetime: SimDuration) -> TempLifetimeRun {
    let tb = Testbed::build(TestbedParams {
        protocol,
        tmp_remote: true,
        ..TestbedParams::default()
    });
    let ops_before = tb.counter.snapshot();
    let p = tb.proc();
    let sim = tb.sim.clone();
    let h = tb.sim.spawn(async move {
        temp_file_lifetime(&p, "/usr/tmp/scratch", bytes, lifetime)
            .await
            .expect("temp lifetime");
        // Let any straggling write-backs fire.
        sim.sleep(SimDuration::from_secs(65)).await;
    });
    tb.sim.run_until(h);
    let ops = tb.counter.snapshot() - ops_before;
    TempLifetimeRun {
        protocol,
        lifetime,
        write_rpcs: ops.get(spritely_proto::NfsProc::Write),
    }
}
