//! Cross-run regression diffing for JSON metric artifacts.
//!
//! `spritely compare a.json b.json` turns the committed `baselines/`
//! snapshots and the repo-root `BENCH_*.json` perf ledgers into an
//! enforced gate: parse both documents (a tiny hand-rolled parser — no
//! serde in this workspace), flatten every leaf to a dotted path
//! (`server_io.disk_writes`, `procs.3.p95_us`, …), and flag any numeric
//! leaf whose relative change exceeds its threshold, plus any key that
//! appeared or disappeared.
//!
//! The simulation is deterministic, so two runs of the same code are
//! byte-identical and the gate cannot flake; wall-clock fields
//! (`wall_ms`, `events_per_sec`, …) are the one nondeterministic class
//! and sit on the default ignore list.

use std::fmt::Write as _;

/// Minimal JSON value (only what the artifacts need).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Parses a JSON document. Object key order is preserved.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {s:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 is copied through verbatim.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// One flattened leaf: dotted path plus its scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Leaf {
    Num(f64),
    Str(String),
}

/// Flattens a parsed document to `(dotted path, leaf)` pairs in
/// document order. Array elements use their index as a path segment;
/// arrays of objects with a recognizable name key (`proc`, `op`) use
/// that name instead, so reordering-insensitive rows still line up.
pub fn flatten(v: &Json) -> Vec<(String, Leaf)> {
    let mut out = Vec::new();
    walk("", v, &mut out);
    out
}

fn walk(prefix: &str, v: &Json, out: &mut Vec<(String, Leaf)>) {
    let join = |key: &str| {
        if prefix.is_empty() {
            key.to_string()
        } else {
            format!("{prefix}.{key}")
        }
    };
    match v {
        Json::Null => {}
        Json::Bool(b) => out.push((prefix.to_string(), Leaf::Num(*b as u8 as f64))),
        Json::Num(n) => out.push((prefix.to_string(), Leaf::Num(*n))),
        Json::Str(s) => out.push((prefix.to_string(), Leaf::Str(s.clone()))),
        Json::Obj(fields) => {
            for (k, v) in fields {
                walk(&join(k), v, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let seg = row_name(item).unwrap_or_else(|| i.to_string());
                walk(&join(&seg), item, out);
            }
        }
    }
}

/// A stable row label for arrays of named records.
fn row_name(v: &Json) -> Option<String> {
    if let Json::Obj(fields) = v {
        for name_key in ["proc", "op", "name", "id"] {
            if let Some((_, Json::Str(s))) = fields.iter().find(|(k, _)| k == name_key) {
                return Some(s.clone());
            }
            if let Some((_, Json::Num(n))) = fields.iter().find(|(k, _)| k == name_key) {
                return Some(format!("{n}"));
            }
        }
    }
    None
}

/// One flagged difference between the two documents.
#[derive(Debug, Clone)]
pub struct Diff {
    /// Dotted path of the leaf.
    pub path: String,
    /// Rendered old value (`-` when the key is new).
    pub a: String,
    /// Rendered new value (`-` when the key disappeared).
    pub b: String,
    /// Relative change for numeric leaves (`|b-a| / max(|a|,|b|)`).
    pub rel: Option<f64>,
}

/// Comparison configuration: the default relative threshold, per-path
/// overrides, and paths to ignore entirely.
pub struct CompareOptions {
    /// Numeric leaves whose relative change exceeds this are flagged.
    pub rel_threshold: f64,
    /// `(path substring, threshold)` overrides; the first match wins.
    pub thresholds: Vec<(String, f64)>,
    /// Path substrings to skip entirely (wall-clock metrics).
    pub ignore: Vec<String>,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            rel_threshold: 0.10,
            thresholds: Vec::new(),
            // Host wall-clock measurements: the only nondeterministic
            // fields any artifact carries.
            ignore: [
                "wall_ms",
                "events_per_sec",
                "units_per_sec",
                "serial_ms",
                "parallel_ms",
                "speedup",
                "cores",
                "elapsed_s",
            ]
            .map(String::from)
            .to_vec(),
        }
    }
}

impl CompareOptions {
    fn ignored(&self, path: &str) -> bool {
        self.ignore.iter().any(|pat| path.contains(pat.as_str()))
    }

    fn threshold_for(&self, path: &str) -> f64 {
        self.thresholds
            .iter()
            .find(|(pat, _)| path.contains(pat.as_str()))
            .map_or(self.rel_threshold, |&(_, t)| t)
    }
}

/// Result of diffing two artifacts.
pub struct CompareReport {
    /// Flagged regressions/changes, in document order of `a`.
    pub diffs: Vec<Diff>,
    /// Leaves compared (after the ignore list).
    pub compared: usize,
}

impl CompareReport {
    /// True when nothing was flagged.
    pub fn ok(&self) -> bool {
        self.diffs.is_empty()
    }

    /// Human-readable rendering, one line per flagged leaf.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.ok() {
            let _ = writeln!(
                out,
                "compare: OK ({} leaves within threshold)",
                self.compared
            );
            return out;
        }
        let _ = writeln!(
            out,
            "compare: {} of {} leaves out of threshold",
            self.diffs.len(),
            self.compared
        );
        for d in &self.diffs {
            match d.rel {
                Some(rel) => {
                    let _ = writeln!(
                        out,
                        "  {:<48} {} -> {}  ({:+.1}%)",
                        d.path,
                        d.a,
                        d.b,
                        rel * 100.0
                    );
                }
                None => {
                    let _ = writeln!(out, "  {:<48} {} -> {}", d.path, d.a, d.b);
                }
            }
        }
        out
    }
}

/// Diffs two JSON artifact texts under `opts`.
pub fn compare_json(
    a_text: &str,
    b_text: &str,
    opts: &CompareOptions,
) -> Result<CompareReport, String> {
    let a = flatten(&parse_json(a_text).map_err(|e| format!("first document: {e}"))?);
    let b = flatten(&parse_json(b_text).map_err(|e| format!("second document: {e}"))?);
    let b_map: std::collections::HashMap<&str, &Leaf> =
        b.iter().map(|(k, v)| (k.as_str(), v)).collect();
    let a_keys: std::collections::HashSet<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
    let mut diffs = Vec::new();
    let mut compared = 0usize;
    for (path, va) in &a {
        if opts.ignored(path) {
            continue;
        }
        compared += 1;
        match b_map.get(path.as_str()) {
            None => diffs.push(Diff {
                path: path.clone(),
                a: render_leaf(va),
                b: "-".to_string(),
                rel: None,
            }),
            Some(vb) => match (va, vb) {
                (Leaf::Num(x), Leaf::Num(y)) => {
                    let denom = x.abs().max(y.abs());
                    let rel = if denom == 0.0 {
                        0.0
                    } else {
                        (y - x).abs() / denom
                    };
                    if rel > opts.threshold_for(path) {
                        diffs.push(Diff {
                            path: path.clone(),
                            a: render_leaf(va),
                            b: render_leaf(vb),
                            rel: Some(if y >= x { rel } else { -rel }),
                        });
                    }
                }
                (va, vb) => {
                    if va != *vb {
                        diffs.push(Diff {
                            path: path.clone(),
                            a: render_leaf(va),
                            b: render_leaf(vb),
                            rel: None,
                        });
                    }
                }
            },
        }
    }
    for (path, vb) in &b {
        if opts.ignored(path) || a_keys.contains(path.as_str()) {
            continue;
        }
        diffs.push(Diff {
            path: path.clone(),
            a: "-".to_string(),
            b: render_leaf(vb),
            rel: None,
        });
    }
    Ok(CompareReport { diffs, compared })
}

fn render_leaf(l: &Leaf) -> String {
    match l {
        Leaf::Num(n) => format!("{n}"),
        Leaf::Str(s) => format!("{s:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_documents_compare_clean() {
        let doc = r#"{"a": 1, "b": {"c": [1, 2, 3]}, "s": "x"}"#;
        let r = compare_json(doc, doc, &CompareOptions::default()).unwrap();
        assert!(r.ok(), "{}", r.render());
        assert_eq!(r.compared, 5);
    }

    #[test]
    fn small_jitter_passes_large_regression_fails() {
        let a = r#"{"latency_us": 1000, "count": 50}"#;
        let ok = r#"{"latency_us": 1050, "count": 50}"#;
        let bad = r#"{"latency_us": 1200, "count": 50}"#;
        let opts = CompareOptions::default();
        assert!(compare_json(a, ok, &opts).unwrap().ok());
        let r = compare_json(a, bad, &opts).unwrap();
        assert!(!r.ok());
        assert_eq!(r.diffs[0].path, "latency_us");
        assert!(r.diffs[0].rel.unwrap() > 0.10);
    }

    #[test]
    fn per_path_threshold_overrides_default() {
        let a = r#"{"hot": 100, "cold": 100}"#;
        let b = r#"{"hot": 104, "cold": 104}"#;
        let opts = CompareOptions {
            rel_threshold: 0.10,
            thresholds: vec![("hot".to_string(), 0.01)],
            ignore: Vec::new(),
        };
        let r = compare_json(a, b, &opts).unwrap();
        assert_eq!(r.diffs.len(), 1);
        assert_eq!(r.diffs[0].path, "hot");
    }

    #[test]
    fn ignore_list_skips_wall_clock_fields() {
        let a = r#"{"wall_ms": 100, "rpc_total": 7}"#;
        let b = r#"{"wall_ms": 900, "rpc_total": 7}"#;
        let r = compare_json(a, b, &CompareOptions::default()).unwrap();
        assert!(r.ok(), "{}", r.render());
        assert_eq!(r.compared, 1);
    }

    #[test]
    fn added_and_missing_keys_are_flagged() {
        let a = r#"{"x": 1, "gone": 2}"#;
        let b = r#"{"x": 1, "new": 3}"#;
        let r = compare_json(a, b, &CompareOptions::default()).unwrap();
        assert_eq!(r.diffs.len(), 2);
        assert!(r.diffs.iter().any(|d| d.path == "gone" && d.b == "-"));
        assert!(r.diffs.iter().any(|d| d.path == "new" && d.a == "-"));
    }

    #[test]
    fn named_array_rows_line_up_by_name() {
        let a = r#"{"procs": [{"proc": "read", "n": 10}, {"proc": "write", "n": 5}]}"#;
        let b = r#"{"procs": [{"proc": "write", "n": 5}, {"proc": "read", "n": 10}]}"#;
        let r = compare_json(a, b, &CompareOptions::default()).unwrap();
        assert!(r.ok(), "{}", r.render());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = r#"{"s": "a\"b\\c\nd", "neg": -1.5e3, "deep": [[{"k": null}]]}"#;
        let v = parse_json(doc).unwrap();
        let flat = flatten(&v);
        assert!(flat
            .iter()
            .any(|(k, v)| k == "s" && *v == Leaf::Str("a\"b\\c\nd".to_string())));
        assert!(flat
            .iter()
            .any(|(k, v)| k == "neg" && *v == Leaf::Num(-1500.0)));
    }

    #[test]
    fn real_snapshot_roundtrips() {
        // A StatsSnapshot-shaped document parses and flattens.
        let doc = r#"{"protocol":"SNFS","rpc_total":123,"clients":[{"id":1,"cache_hits":10,"cache_misses":2,"dirty_blocks":0}],"server":null,"server_io":{"cache_hits":5,"cache_misses":1}}"#;
        let flat = flatten(&parse_json(doc).unwrap());
        assert!(flat.iter().any(|(k, _)| k == "clients.1.cache_hits"));
        assert!(flat.iter().any(|(k, _)| k == "server_io.cache_misses"));
    }
}
