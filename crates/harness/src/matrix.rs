//! Parallel experiment matrix: fan a set of independent runs
//! (seeds × parameters × protocols) across OS threads.
//!
//! Every experiment in this repo is a *self-contained* deterministic
//! simulation: a run builds its own [`Sim`], its own hosts and its own
//! seeded RNG streams, and shares nothing with any other run. A matrix
//! of runs is therefore embarrassingly parallel — the only requirement
//! is that results come back in job order, which [`run_matrix`] enforces
//! by indexing each result by its job position rather than by completion
//! time. The output is **byte-identical for any thread count**,
//! including the serial `threads = 1` case; `tests/matrix.rs` pins that
//! equality over random matrices.
//!
//! [`Sim`]: spritely_sim::Sim

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use spritely_metrics::TextTable;

use crate::{run_andrew, run_scaling, run_sort_experiment, Protocol};

/// One cell of an experiment matrix. Plain data (`Copy + Send`), so a
/// worker thread can pick a job off the shared list and run it locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Full Andrew benchmark (see [`run_andrew`]).
    Andrew {
        /// File service under test.
        protocol: Protocol,
        /// Put `/tmp` on the remote mount.
        tmp_remote: bool,
        /// Workload RNG seed.
        seed: u64,
    },
    /// Sort benchmark (see [`run_sort_experiment`]).
    Sort {
        /// File service under test.
        protocol: Protocol,
        /// Input size in bytes.
        input_bytes: u64,
        /// Run the periodic update daemon.
        update: bool,
    },
    /// Multi-client scaling run (see [`run_scaling`]).
    Scaling {
        /// File service under test.
        protocol: Protocol,
        /// Number of client hosts.
        clients: usize,
        /// Workload RNG seed.
        seed: u64,
    },
}

impl Experiment {
    /// Deterministic row label: experiment kind plus every parameter.
    pub fn label(&self) -> String {
        match self {
            Experiment::Andrew {
                protocol,
                tmp_remote,
                seed,
            } => format!(
                "andrew {} tmp-{} seed={seed}",
                protocol.label(),
                if *tmp_remote { "rem" } else { "loc" },
            ),
            Experiment::Sort {
                protocol,
                input_bytes,
                update,
            } => format!(
                "sort {} {}KB upd={}",
                protocol.label(),
                input_bytes / 1024,
                if *update { "on" } else { "off" },
            ),
            Experiment::Scaling {
                protocol,
                clients,
                seed,
            } => format!("scaling {} n={clients} seed={seed}", protocol.label()),
        }
    }

    /// Runs the experiment to completion on the calling thread.
    fn run(&self) -> MatrixResult {
        match *self {
            Experiment::Andrew {
                protocol,
                tmp_remote,
                seed,
            } => {
                let r = run_andrew(protocol, tmp_remote, seed);
                MatrixResult {
                    label: self.label(),
                    elapsed_s: r.times.total().as_secs_f64(),
                    rpc_total: r.stats.rpc_total,
                    events_retired: r.stats.sim.events_retired,
                    stats_json: r.stats.to_json(),
                }
            }
            Experiment::Sort {
                protocol,
                input_bytes,
                update,
            } => {
                let r = run_sort_experiment(protocol, input_bytes, update);
                MatrixResult {
                    label: self.label(),
                    elapsed_s: r.elapsed.as_secs_f64(),
                    rpc_total: r.stats.rpc_total,
                    events_retired: r.stats.sim.events_retired,
                    stats_json: r.stats.to_json(),
                }
            }
            Experiment::Scaling {
                protocol,
                clients,
                seed,
            } => {
                let r = run_scaling(protocol, clients, seed);
                MatrixResult {
                    label: self.label(),
                    elapsed_s: r.makespan.as_secs_f64(),
                    rpc_total: r.stats.rpc_total,
                    events_retired: r.stats.sim.events_retired,
                    stats_json: r.stats.to_json(),
                }
            }
        }
    }
}

/// The outcome of one matrix cell: a deterministic label, the headline
/// numbers, and the full [`StatsSnapshot`](crate::StatsSnapshot) JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixResult {
    /// [`Experiment::label`] of the job that produced this result.
    pub label: String,
    /// Simulated elapsed seconds (benchmark total / makespan).
    pub elapsed_s: f64,
    /// Total RPCs the server endpoint served.
    pub rpc_total: u64,
    /// Scheduler events the run's executor retired.
    pub events_retired: u64,
    /// Full end-of-run statistics snapshot, serialized.
    pub stats_json: String,
}

/// Runs every job in `jobs`, fanning across `threads` worker threads
/// (`0` or `1` means serial on the calling thread). Results come back
/// in job order and are byte-identical for any thread count: each run
/// is an isolated simulation, and results are placed by job index.
pub fn run_matrix(jobs: &[Experiment], threads: usize) -> Vec<MatrixResult> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(Experiment::run).collect();
    }
    let slots: Vec<Mutex<Option<MatrixResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let result = job.run();
                *slots[i].lock().expect("matrix slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("matrix slot poisoned")
                .expect("worker completed every claimed job")
        })
        .collect()
}

/// Renders matrix results as a table: one row per job, in job order.
pub fn render_matrix(results: &[MatrixResult]) -> String {
    let mut t = TextTable::new(vec!["Experiment", "elapsed s", "RPCs", "sim events"]);
    for r in results {
        t.row(vec![
            r.label.clone(),
            format!("{:.1}", r.elapsed_s),
            r.rpc_total.to_string(),
            r.events_retired.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matrix_matches_serial_byte_for_byte() {
        let jobs = [
            Experiment::Sort {
                protocol: Protocol::Nfs,
                input_bytes: 281 * 1024,
                update: true,
            },
            Experiment::Sort {
                protocol: Protocol::Snfs,
                input_bytes: 281 * 1024,
                update: true,
            },
            Experiment::Andrew {
                protocol: Protocol::Snfs,
                tmp_remote: false,
                seed: 42,
            },
            Experiment::Scaling {
                protocol: Protocol::Snfs,
                clients: 2,
                seed: 7,
            },
        ];
        let serial = run_matrix(&jobs, 1);
        let parallel = run_matrix(&jobs, 4);
        assert_eq!(serial, parallel, "thread count changed a result");
        let table = render_matrix(&serial);
        assert!(table.contains("andrew SNFS tmp-loc seed=42"));
        assert!(table.contains("scaling SNFS n=2 seed=7"));
    }
}
