//! Experiment harness: topologies, benchmark runners and paper-style
//! reports for every table and figure in the paper's evaluation.
//!
//! | Paper artifact | Runner | Report |
//! |---|---|---|
//! | Table 5-1 (Andrew times) | [`run_andrew`] | [`report::table_5_1`] |
//! | Table 5-2 (Andrew RPCs) | [`run_andrew`] | [`report::table_5_2`] |
//! | Figure 5-1/5-2 (rates & utilization) | [`run_andrew`] | [`report::figure_series`] |
//! | Table 5-3 (sort times) | [`run_sort_experiment`] | [`report::sort_table`] |
//! | Table 5-4 (sort RPCs) | [`run_sort_experiment`] | [`report::sort_rpc_table`] |
//! | Table 5-5 (infinite write-delay) | [`run_sort_experiment`] with `update_enabled = false` | [`report::sort_table`] |
//! | Table 5-6 (RPCs, update on/off) | [`run_sort_experiment`] | [`report::sort_rpc_table`] |
//! | §5.3 micro | [`run_reopen`] | [`report::reopen_table`] |
//! | temp-lifetime ablation | [`run_temp_lifetime`] | — |

pub mod compare;
pub mod config;
pub mod report;
pub mod snapshot;

mod andrew;
mod chaosx;
mod flushx;
mod matrix;
mod microx;
mod scaling;
mod sortx;
mod testbed;

pub use andrew::{run_andrew, run_andrew_with, AndrewRun};
pub use chaosx::{
    chaos_andrew, chaos_delegation, chaos_shard, chaos_write_sharing, server_digest,
    testbed_digest, ChaosVerdict,
};
pub use compare::{compare_json, CompareOptions, CompareReport};
pub use flushx::{run_flush, run_flush_with, FlushRun};
pub use matrix::{render_matrix, run_matrix, Experiment, MatrixResult};
pub use microx::{run_reopen, run_temp_lifetime, ReopenRun, TempLifetimeRun};
pub use scaling::{
    run_scaling, run_scaling_shards, run_scaling_with, ScalingRun, ScalingShardsRun,
};
pub use snapshot::{
    ClientSnapshot, DelegationSnapshot, FaultSnapshot, ProfileSnapshot, ServerIoSnapshot,
    ServerSnapshot, ShardSnapshot, ShardsSnapshot, SimSnapshot, StatsSnapshot, TraceReport,
    TransportSnapshot,
};
pub use sortx::{run_sort_experiment, run_sort_with, SortRun};
pub use spritely_core::{
    DelegationParams, DelegationStats, ServerIoParams, SnfsServerParams, WriteBehindParams,
};
pub use spritely_rpcnet::{FaultParams, PartitionDir, TransportParams, TransportStats};
pub use testbed::{
    ClientHost, Protocol, RemoteClient, ShardHost, ShardParams, Testbed, TestbedParams,
};

#[cfg(test)]
mod tests {
    use super::*;
    use spritely_proto::NfsProc;

    #[test]
    fn testbed_builds_for_every_protocol() {
        for p in [
            Protocol::Local,
            Protocol::Nfs,
            Protocol::NfsFixed,
            Protocol::Snfs,
            Protocol::SnfsDelayedClose,
        ] {
            let tb = Testbed::build(TestbedParams {
                protocol: p,
                ..TestbedParams::default()
            });
            assert_eq!(tb.clients.len(), 1);
            assert_eq!(tb.endpoint.is_some(), p != Protocol::Local, "{p:?}");
        }
    }

    #[test]
    fn sort_local_beats_nothing_but_runs() {
        let run = run_sort_experiment(Protocol::Local, 281 * 1024, true);
        assert!(run.elapsed.as_secs_f64() > 0.5);
        assert_eq!(run.ops.total(), 0, "local config makes no RPCs");
    }

    #[test]
    fn sort_snfs_beats_nfs() {
        let nfs = run_sort_experiment(Protocol::Nfs, 281 * 1024, true);
        let snfs = run_sort_experiment(Protocol::Snfs, 281 * 1024, true);
        assert!(
            snfs.elapsed < nfs.elapsed,
            "SNFS {} vs NFS {}",
            snfs.elapsed,
            nfs.elapsed
        );
        assert!(
            snfs.ops.get(NfsProc::Write) < nfs.ops.get(NfsProc::Write),
            "SNFS writes fewer blocks through"
        );
    }

    #[test]
    fn sort_snfs_without_update_writes_almost_nothing() {
        let run = run_sort_experiment(Protocol::Snfs, 281 * 1024, false);
        assert!(
            run.ops.get(NfsProc::Write) <= 2,
            "expected ~0 write RPCs, got {}",
            run.ops.get(NfsProc::Write)
        );
    }

    #[test]
    fn temp_lifetime_below_delay_is_free_on_snfs() {
        let short = run_temp_lifetime(
            Protocol::Snfs,
            64 * 1024,
            spritely_sim::SimDuration::from_secs(5),
        );
        assert_eq!(short.write_rpcs, 0, "short-lived temp never written");
        let long = run_temp_lifetime(
            Protocol::Snfs,
            64 * 1024,
            spritely_sim::SimDuration::from_secs(120),
        );
        assert!(long.write_rpcs > 0, "long-lived temp written back");
        let nfs = run_temp_lifetime(
            Protocol::Nfs,
            64 * 1024,
            spritely_sim::SimDuration::from_secs(5),
        );
        assert!(nfs.write_rpcs >= 16, "NFS always writes through");
    }

    #[test]
    fn reopen_probe_shows_close_bug() {
        let buggy = run_reopen(Protocol::Nfs, true, 256 * 1024);
        let fixed = run_reopen(Protocol::NfsFixed, true, 256 * 1024);
        assert!(buggy.ops.get(NfsProc::Read) > fixed.ops.get(NfsProc::Read));
    }
}

#[cfg(test)]
mod transport_tests {
    use super::*;
    use spritely_vfs::OpenFlags;

    /// Eight concurrent tasks on one NFS client each write a 16-block
    /// file, then reopen and read it back — the multi-process workload
    /// the compound batcher targets.
    fn run_concurrent_workload(transport: TransportParams) -> Testbed {
        let tb = Testbed::build(TestbedParams {
            protocol: Protocol::Nfs,
            transport,
            trace: true,
            ..TestbedParams::default()
        });
        let mut handles = Vec::new();
        for i in 0..8 {
            let p = tb.proc();
            handles.push(tb.sim.spawn(async move {
                let path = format!("/remote/f{i}");
                let fd = p.open(&path, OpenFlags::create_write()).await.unwrap();
                p.write(fd, &[7u8; 16 * 4096]).await.unwrap();
                p.close(fd).await.unwrap();
                let fd = p.open(&path, OpenFlags::read()).await.unwrap();
                while !p.read(fd, 4096).await.unwrap().is_empty() {}
                p.close(fd).await.unwrap();
            }));
        }
        for h in handles {
            tb.sim.run_until(h);
        }
        tb
    }

    #[test]
    fn pipelined_transport_batches_fewer_messages_and_checks_clean() {
        let paper = run_concurrent_workload(TransportParams::paper());
        let piped = run_concurrent_workload(TransportParams::pipelined());

        let ps = paper.stats_snapshot();
        let xs = piped.stats_snapshot();
        assert_eq!(ps.transport.batches, 0, "paper transport never batches");
        assert!(xs.transport.batches > 0, "pipelined transport batches");
        assert!(
            xs.transport.net_messages < ps.transport.net_messages,
            "batching must shrink wire messages: {} vs {}",
            xs.transport.net_messages,
            ps.transport.net_messages
        );
        assert!(xs.transport.saved_round_trips > 0);

        // Piggybacked post-op attributes elide reopen-time probes; the
        // pipelined run therefore executes no *more* RPCs than paper.
        assert!(xs.transport.attr_elisions > 0, "reopen probes elided");
        assert!(xs.rpc_total <= ps.rpc_total);

        // The causal checker accepts the batched trace (conservation +
        // at-most-once execution hold).
        let report = piped.finish_trace().expect("trace was on");
        assert!(report.ok(), "checker violations: {:?}", report.violations);

        // The table renders both configurations.
        let table =
            report::transport_table(&[("paper", &ps.transport), ("pipelined", &xs.transport)]);
        assert!(table.contains("pipelined"));
        assert!(table.contains("Saved/proc"));
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use spritely_proto::NfsProc;
    use spritely_vfs::OpenFlags;

    #[test]
    fn rpc_latency_profile_is_sane() {
        // Writes pay the synchronous disk; lookups are wire-bound. The
        // latency recorder must reflect that ordering.
        let tb = Testbed::build(TestbedParams {
            protocol: Protocol::Nfs,
            ..TestbedParams::default()
        });
        let p = tb.proc();
        let latency = tb.latency.clone();
        let sim = tb.sim.clone();
        let h = sim.spawn(async move {
            let fd = p
                .open("/remote/f", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, &[1u8; 16 * 4096]).await.unwrap();
            p.close(fd).await.unwrap();
            let fd = p.open("/remote/f", OpenFlags::read()).await.unwrap();
            while !p.read(fd, 4096).await.unwrap().is_empty() {}
            p.close(fd).await.unwrap();
        });
        sim.run_until(h);
        assert!(latency.count(NfsProc::Write) >= 16);
        assert!(latency.count(NfsProc::Read) >= 16);
        assert!(latency.count(NfsProc::Lookup) >= 1);
        let w = latency.mean(NfsProc::Write);
        let l = latency.mean(NfsProc::Lookup);
        assert!(w > l * 3, "sync writes ({w}) should dwarf lookups ({l})");
        assert!(latency.percentile(NfsProc::Write, 0.95) >= latency.mean(NfsProc::Write) / 2);
        assert!(latency.max(NfsProc::Write) >= w);
    }
}
