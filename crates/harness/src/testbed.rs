//! Testbed construction: one server (or a sharded group of servers),
//! one or more diskful clients, a shared Ethernet, and a protocol
//! choice per experiment.

use std::cell::RefCell;
use std::rc::Rc;

use spritely_blockdev::Disk;
use spritely_core::{
    DelegationParams, DelegationStats, ServerIoParams, SnfsClient, SnfsClientParams, SnfsServer,
    SnfsServerParams, WriteBehindParams,
};
use spritely_localfs::LocalFs;
use spritely_metrics::{GaugeSeries, LatencyStats, OpCounter, RateSeries};
use spritely_nfs::{nfs_server, NfsClient, NfsClientParams};
use spritely_proto::{ClientId, FileHandle, Layout, NfsReply, NfsRequest, BLOCK_SIZE};
use spritely_rpcnet::{
    Caller, Endpoint, FaultParams, Network, ShardCaller, TransportParams, TransportStats,
};
use spritely_sim::{Resource, Sim, SimDuration};
use spritely_trace::Tracer;
use spritely_vfs::{FsBackend, Mount, Proc, Vfs};

use crate::config;

/// Which file service the experiment runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Everything on the client's local disk (the paper's "local" column).
    Local,
    /// Baseline NFS with the vintage invalidate-on-close client.
    Nfs,
    /// NFS with the close bug fixed (ablation).
    NfsFixed,
    /// Spritely NFS.
    Snfs,
    /// Spritely NFS with the §6.2 delayed-close extension (ablation).
    SnfsDelayedClose,
}

impl Protocol {
    /// Display label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Local => "local",
            Protocol::Nfs => "NFS",
            Protocol::NfsFixed => "NFS(fixed)",
            Protocol::Snfs => "SNFS",
            Protocol::SnfsDelayedClose => "SNFS(dc)",
        }
    }

    /// True for the two SNFS variants.
    pub fn is_snfs(self) -> bool {
        matches!(self, Protocol::Snfs | Protocol::SnfsDelayedClose)
    }
}

/// Namespace sharding across independent server instances
/// (DESIGN.md §18): root-level names hash to one of `n` servers, each
/// with its own disk, file system, CPU, state table, and endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardParams {
    /// Number of server shards. With `n = 1` — the paper configuration —
    /// the sharded build path is not even taken: the testbed constructs
    /// the exact single-server topology it always has, byte for byte.
    pub n: usize,
}

impl ShardParams {
    /// The paper's single-server configuration.
    pub fn paper() -> Self {
        ShardParams { n: 1 }
    }

    /// An `n`-shard namespace.
    pub fn sharded(n: usize) -> Self {
        assert!(n >= 1, "need at least one shard");
        ShardParams { n }
    }
}

impl Default for ShardParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Testbed knobs beyond the protocol itself.
#[derive(Debug, Clone, Copy)]
pub struct TestbedParams {
    /// The file service under test.
    pub protocol: Protocol,
    /// Mount `/tmp` and `/usr/tmp` on the remote server instead of the
    /// client's local disk.
    pub tmp_remote: bool,
    /// Run the 30 s update daemons (client local FS, server FS, SNFS
    /// client). `false` = the paper's "infinite write-delay" (§5.4).
    pub update_enabled: bool,
    /// Override of the SNFS client write-delay (default 30 s).
    pub snfs_write_delay: SimDuration,
    /// Override of the NFS attribute-probe floor (default 3 s).
    pub nfs_attr_min: SimDuration,
    /// NFS client read-ahead.
    pub read_ahead: bool,
    /// SNFS client read-ahead window (1 = the paper's single
    /// speculative block).
    pub read_ahead_window: usize,
    /// SNFS client write-behind pool (gathering + pipelining). The
    /// default is paper-faithful: one block per RPC, one in flight.
    pub write_behind: WriteBehindParams,
    /// Name caching at the clients (§7 extension for SNFS, dnlc-style TTL
    /// cache for NFS).
    pub name_cache: bool,
    /// SNFS server state-table limit and reclaim target.
    pub snfs_server: SnfsServerParams,
    /// Server I/O pipeline: disk-arm scheduling, server block cache,
    /// single-flight misses, and RPC admission width. The default
    /// ([`ServerIoParams::paper`]) reproduces the measured 1989 server
    /// byte-for-byte; [`ServerIoParams::pipelined`] turns the pipeline on.
    pub server_io: ServerIoParams,
    /// Client data-cache capacity in blocks (shrink to force dirty-block
    /// evictions in tests).
    pub client_cache_blocks: usize,
    /// Transport pipeline: compound-RPC batching, piggybacked post-op
    /// attributes, switched network, retransmission backoff. The default
    /// ([`TransportParams::paper`]) reproduces the paper's transport
    /// byte-for-byte; [`TransportParams::pipelined`] turns it all on.
    /// Applies to client callers only — callback RPCs always use the
    /// paper transport.
    pub transport: TransportParams,
    /// Record a structured event trace of the run (client ops, RPCs,
    /// handlers, state-table transitions, callbacks, flushes). Tracing
    /// never awaits or consumes randomness, so a traced run produces the
    /// same tables as an untraced one.
    pub trace: bool,
    /// Network fault injection (drop/duplicate/delay/reply-loss). The
    /// default is provably inert: no fault state is installed, no
    /// randomness is drawn, and the run is byte-identical to one built
    /// before the fault layer existed. Scripted partitions can still be
    /// added at runtime via [`Network::partition`].
    pub faults: FaultParams,
    /// Open delegations (DESIGN.md §17): RPC-free open/close fast path
    /// with recall-on-conflict. Applied to both the SNFS server and its
    /// clients. The default ([`DelegationParams::paper`]) is provably
    /// inert — no grants, no new RPCs, byte-identical artifacts.
    pub delegation: DelegationParams,
    /// Namespace sharding (DESIGN.md §18). The default
    /// ([`ShardParams::paper`], one shard) leaves the single-server
    /// build path untouched and byte-identical.
    pub shards: ShardParams,
}

impl Default for TestbedParams {
    fn default() -> Self {
        TestbedParams {
            protocol: Protocol::Snfs,
            tmp_remote: false,
            update_enabled: true,
            snfs_write_delay: SimDuration::ZERO,
            nfs_attr_min: SimDuration::from_secs(3),
            read_ahead: true,
            read_ahead_window: 1,
            write_behind: WriteBehindParams::default(),
            name_cache: false,
            snfs_server: SnfsServerParams::default(),
            server_io: ServerIoParams::paper(),
            client_cache_blocks: config::CLIENT_CACHE_BLOCKS,
            transport: TransportParams::paper(),
            trace: false,
            faults: FaultParams::default(),
            delegation: DelegationParams::paper(),
            shards: ShardParams::paper(),
        }
    }
}

/// The protocol client attached to one client host.
#[derive(Clone)]
pub enum RemoteClient {
    /// Local protocol: no remote client at all.
    None,
    /// Baseline NFS client.
    Nfs(NfsClient),
    /// SNFS client.
    Snfs(SnfsClient),
}

/// One client host: CPU, local disk FS, its remote-protocol client, and
/// a process factory.
pub struct ClientHost {
    /// Host CPU.
    pub cpu: Resource,
    /// Local-disk file system.
    pub local_fs: LocalFs,
    /// Protocol client (if any).
    pub remote: RemoteClient,
    /// Mount table for processes on this host.
    pub vfs: Vfs,
}

impl ClientHost {
    /// Spawns a process on this host.
    pub fn proc(&self, sim: &Sim) -> Proc {
        Proc::new(
            sim,
            self.vfs.clone(),
            self.cpu.clone(),
            config::syscall_costs(),
        )
    }
}

/// One shard's server stack in a sharded testbed: its own CPU, disk
/// file system, SNFS server, endpoint, and RPC counter. All handles are
/// cheap clones of reference-counted state; shard 0's are the same
/// objects as the `Testbed`'s dedicated single-server fields.
#[derive(Clone)]
pub struct ShardHost {
    /// Shard index (0-based; this shard exports `fsid = shard + 1`).
    pub shard: u32,
    /// Shard host CPU.
    pub cpu: Resource,
    /// Shard's exported file system.
    pub fs: LocalFs,
    /// Shard's SNFS server.
    pub server: SnfsServer,
    /// Shard's RPC endpoint.
    pub endpoint: Endpoint<NfsRequest, NfsReply>,
    /// Per-procedure counter on this shard's endpoint.
    pub counter: OpCounter,
}

/// A complete experiment topology.
pub struct Testbed {
    /// The simulation.
    pub sim: Sim,
    /// Parameters it was built with.
    pub params: TestbedParams,
    /// Server host CPU.
    pub server_cpu: Resource,
    /// The server's exported file system.
    pub server_fs: LocalFs,
    /// The SNFS server object (present for SNFS protocols).
    pub snfs_server: Option<SnfsServer>,
    /// Per-procedure counter on the server endpoint.
    pub counter: OpCounter,
    /// Call-rate series feeding the figures.
    pub rates: RateSeries,
    /// End-to-end RPC latency per procedure, across all clients.
    pub latency: LatencyStats,
    /// Server CPU utilization samples (filled by
    /// [`spawn_utilization_sampler`](Self::spawn_utilization_sampler)).
    pub util: GaugeSeries,
    /// The shared network.
    pub net: Network,
    /// Aggregated transport observability across every client caller
    /// (batch sizes, saved round trips). Empty on the paper transport.
    pub transport_stats: TransportStats,
    /// The run's event tracer (present when [`TestbedParams::trace`]).
    pub tracer: Option<Tracer>,
    /// The NFS/SNFS endpoint (absent for `Protocol::Local`).
    pub endpoint: Option<Endpoint<NfsRequest, NfsReply>>,
    /// The per-client callback-service endpoints (SNFS only): the
    /// server's callbacks — write-back, invalidate, delegation recall —
    /// land here, so their duplicate-request caches are where a
    /// retransmitted callback is replayed from.
    pub cb_endpoints: Vec<Endpoint<spritely_proto::CallbackArg, spritely_proto::CallbackReply>>,
    /// Client hosts (at least one).
    pub clients: Vec<ClientHost>,
    /// Well-known directories on the server: (src, target, tmp).
    pub server_dirs: (FileHandle, FileHandle, FileHandle),
    /// Per-shard server stacks. Empty in the single-server paper
    /// configuration; length `n ≥ 2` in sharded runs, where entry 0
    /// aliases the dedicated single-server fields above.
    pub shard_hosts: Vec<ShardHost>,
    /// The authoritative layout map shared by the shard servers
    /// (sharded runs only).
    pub layout: Option<Rc<RefCell<Layout>>>,
}

impl Testbed {
    /// Builds a testbed with one client host.
    pub fn build(params: TestbedParams) -> Self {
        Self::build_with_clients(params, 1)
    }

    /// Builds a testbed with `n_clients` client hosts.
    pub fn build_with_clients(params: TestbedParams, n_clients: usize) -> Self {
        assert!(n_clients >= 1, "need at least one client");
        if params.shards.n > 1 {
            // The sharded topology is a separate construction path so
            // the single-server path below stays byte-for-byte what it
            // always was.
            return Self::build_sharded(params, n_clients);
        }
        let sim = Sim::new();
        // ---- server ------------------------------------------------------
        let server_disk = Disk::with_sched(
            &sim,
            "server-disk",
            config::disk_params(),
            params.server_io.sched,
        );
        let mut server_fsp = config::server_fs_params(params.update_enabled);
        server_fsp.cache_blocks = params.server_io.cache_blocks;
        server_fsp.single_flight_reads = params.server_io.single_flight_reads;
        let server_fs = LocalFs::new(&sim, 1, server_disk, server_fsp);
        server_fs.spawn_update_daemon();
        let server_cpu = Resource::new(&sim, "server-cpu", 1);
        let counter = OpCounter::new();
        let rates = RateSeries::new(config::figure_bucket());
        let util = GaugeSeries::new();
        let latency = LatencyStats::new();
        let netp = if params.transport.switched {
            config::net_params().switched_full_duplex()
        } else {
            config::net_params()
        };
        let net = Network::new(&sim, "ether", netp);
        if params.faults.any() {
            net.set_faults(params.faults);
        }
        let transport_stats = TransportStats::new();
        let tracer = params.trace.then(|| {
            let t = Tracer::new(&sim);
            t.meta("protocol", params.protocol.label());
            t.meta("clients", n_clients.to_string());
            t.meta("disk_sched", params.server_io.sched.meta_value());
            server_fs.disk().set_tracer(t.clone());
            server_fs.set_tracer(t.clone());
            net.set_tracer(t.clone());
            t
        });
        // Well-known server directories.
        let root = server_fs.root();
        let (src_dir, target_dir, tmp_dir) = {
            let fs = server_fs.clone();
            sim.block_on(async move {
                let (s, _) = fs.mkdir(root, "src").await.expect("mkdir src");
                let (t, _) = fs.mkdir(root, "target").await.expect("mkdir target");
                let (m, _) = fs.mkdir(root, "tmp").await.expect("mkdir tmp");
                (s, t, m)
            })
        };
        // ---- protocol endpoint --------------------------------------------
        // The admission width (endpoint threads) comes from the server I/O
        // params: that many RPCs may overlap CPU with disk waits.
        let mut ep_params = config::endpoint_params();
        ep_params.threads = params.server_io.service_threads;
        let mut snfs_server = None;
        let endpoint = match params.protocol {
            Protocol::Local => None,
            Protocol::Nfs | Protocol::NfsFixed => {
                let ep = nfs_server(
                    &sim,
                    "nfsd",
                    server_fs.clone(),
                    server_cpu.clone(),
                    ep_params,
                    counter.clone(),
                );
                ep.set_rate_series(rates.clone());
                if let Some(t) = &tracer {
                    ep.set_tracer(t.clone());
                }
                Some(ep)
            }
            Protocol::Snfs | Protocol::SnfsDelayedClose => {
                let mut sp = params.snfs_server;
                sp.delegation = params.delegation;
                let srv = SnfsServer::new(
                    &sim,
                    server_fs.clone(),
                    params.server_io.service_threads,
                    sp,
                );
                if let Some(t) = &tracer {
                    srv.set_tracer(t.clone());
                }
                let ep = srv.endpoint("snfsd", server_cpu.clone(), ep_params, counter.clone());
                ep.set_rate_series(rates.clone());
                if let Some(t) = &tracer {
                    ep.set_tracer(t.clone());
                }
                snfs_server = Some(srv);
                Some(ep)
            }
        };
        // ---- clients -------------------------------------------------------
        let mut clients = Vec::new();
        let mut cb_endpoints = Vec::new();
        for i in 0..n_clients {
            let cid = ClientId(i as u32 + 1);
            let cpu = Resource::new(&sim, format!("client{}-cpu", cid.0), 1);
            let disk = Disk::new(&sim, format!("client{}-disk", cid.0), config::disk_params());
            let local_fs = LocalFs::new(
                &sim,
                100 + cid.0,
                disk,
                config::client_fs_params(params.update_enabled),
            );
            local_fs.spawn_update_daemon();
            // Local tmp directory.
            let lroot = local_fs.root();
            let ltmp = {
                let fs = local_fs.clone();
                sim.block_on(async move {
                    let (t, _) = fs.mkdir(lroot, "tmp").await.expect("mkdir local tmp");
                    t
                })
            };
            let (remote, remote_backend) = match (&endpoint, params.protocol) {
                (None, _) => (RemoteClient::None, None),
                (Some(ep), Protocol::Nfs | Protocol::NfsFixed) => {
                    let caller = Caller::new(
                        &sim,
                        net.clone(),
                        ep.clone(),
                        cid,
                        cpu.clone(),
                        config::caller_params(),
                    );
                    caller.set_transport(params.transport);
                    caller.set_transport_stats(transport_stats.clone());
                    caller.set_latency_stats(latency.clone());
                    if let Some(t) = &tracer {
                        caller.set_tracer(t.clone());
                    }
                    let client = NfsClient::new(
                        &sim,
                        caller,
                        NfsClientParams {
                            attr_min: params.nfs_attr_min,
                            invalidate_on_close: params.protocol == Protocol::Nfs,
                            read_ahead: params.read_ahead,
                            cache_blocks: params.client_cache_blocks,
                            name_cache: params.name_cache,
                            ..NfsClientParams::default()
                        },
                    );
                    (
                        RemoteClient::Nfs(client.clone()),
                        Some(FsBackend::Nfs(client)),
                    )
                }
                (Some(ep), Protocol::Snfs | Protocol::SnfsDelayedClose) => {
                    let caller = Caller::new(
                        &sim,
                        net.clone(),
                        ep.clone(),
                        cid,
                        cpu.clone(),
                        config::caller_params(),
                    );
                    caller.set_transport(params.transport);
                    caller.set_transport_stats(transport_stats.clone());
                    caller.set_latency_stats(latency.clone());
                    if let Some(t) = &tracer {
                        caller.set_tracer(t.clone());
                    }
                    let client = SnfsClient::new(
                        &sim,
                        caller,
                        SnfsClientParams {
                            cache_blocks: params.client_cache_blocks,
                            write_delay: params.snfs_write_delay,
                            update_interval: params
                                .update_enabled
                                .then(|| SimDuration::from_secs(30)),
                            read_ahead: params.read_ahead,
                            read_ahead_window: params.read_ahead_window,
                            write_behind: params.write_behind,
                            delayed_close: params.protocol == Protocol::SnfsDelayedClose,
                            name_cache: params.name_cache,
                            delegation: params.delegation,
                            ..SnfsClientParams::default()
                        },
                    );
                    if let Some(t) = &tracer {
                        client.set_tracer(t.clone());
                    }
                    client.spawn_update_daemon();
                    client.spawn_keepalive_daemon(SimDuration::from_secs(10));
                    // Register the callback channel.
                    let srv = snfs_server.as_ref().expect("SNFS server exists");
                    let cb_ep = client.callback_endpoint(
                        format!("cbsrv{}", cid.0),
                        cpu.clone(),
                        config::callback_endpoint_params(),
                        counter.clone(),
                    );
                    if let Some(t) = &tracer {
                        cb_ep.set_tracer(t.clone());
                    }
                    cb_endpoints.push(cb_ep.clone());
                    let cb_caller = Caller::new(
                        &sim,
                        net.clone(),
                        cb_ep,
                        ClientId(0),
                        server_cpu.clone(),
                        config::caller_params(),
                    );
                    // Callback callers carry ClientId(0) (they originate at
                    // the server); their fault link is the *client* host in
                    // the server→client direction, so a partition of the
                    // client host severs both its request and callback legs.
                    cb_caller.set_fault_link(cid.0, true);
                    if let Some(t) = &tracer {
                        cb_caller.set_tracer(t.clone());
                    }
                    srv.register_client(cid, cb_caller);
                    (
                        RemoteClient::Snfs(client.clone()),
                        Some(FsBackend::Snfs(client)),
                    )
                }
                (Some(_), Protocol::Local) => unreachable!("local has no endpoint"),
            };
            // ---- mounts ----
            let mut mounts = vec![Mount::new("/", FsBackend::Local(local_fs.clone()), lroot)];
            match &remote_backend {
                Some(backend) => {
                    mounts.push(Mount::new("/remote", backend.clone(), root));
                    let tmp_backend = if params.tmp_remote {
                        Mount::new("/usr/tmp", backend.clone(), tmp_dir)
                    } else {
                        Mount::new("/usr/tmp", FsBackend::Local(local_fs.clone()), ltmp)
                    };
                    mounts.push(tmp_backend);
                }
                None => {
                    // Local protocol: "/remote" is just the local disk too.
                    mounts.push(Mount::new(
                        "/remote",
                        FsBackend::Local(local_fs.clone()),
                        lroot,
                    ));
                    mounts.push(Mount::new(
                        "/usr/tmp",
                        FsBackend::Local(local_fs.clone()),
                        ltmp,
                    ));
                }
            }
            let vfs = Vfs::new(mounts);
            clients.push(ClientHost {
                cpu,
                local_fs,
                remote,
                vfs,
            });
        }
        Testbed {
            sim,
            params,
            server_cpu,
            server_fs,
            snfs_server,
            counter,
            rates,
            latency,
            util,
            net,
            transport_stats,
            tracer,
            endpoint,
            cb_endpoints,
            clients,
            server_dirs: (src_dir, target_dir, tmp_dir),
            shard_hosts: Vec::new(),
            layout: None,
        }
    }

    /// Builds the sharded topology (DESIGN.md §18): `n` full server
    /// stacks, one authoritative layout map, inter-shard coordination
    /// callers, and per-client shard-routing callers. SNFS only.
    fn build_sharded(params: TestbedParams, n_clients: usize) -> Self {
        let n_shards = params.shards.n;
        assert!(
            params.protocol.is_snfs(),
            "a sharded namespace requires an SNFS protocol (got {:?})",
            params.protocol
        );
        assert!(
            !params.name_cache,
            "name caching is not supported over a sharded namespace: \
             a cached root binding would bypass the layout map"
        );
        let sim = Sim::new();
        let layout = Rc::new(RefCell::new(Layout::new(n_shards as u32)));
        // ---- per-shard server stacks --------------------------------------
        let mut shard_fs: Vec<LocalFs> = Vec::new();
        let mut shard_cpu: Vec<Resource> = Vec::new();
        let mut shard_counter: Vec<OpCounter> = Vec::new();
        for s in 0..n_shards {
            let disk = Disk::with_sched(
                &sim,
                format!("server{s}-disk"),
                config::disk_params(),
                params.server_io.sched,
            );
            let mut fsp = config::server_fs_params(params.update_enabled);
            fsp.cache_blocks = params.server_io.cache_blocks;
            fsp.single_flight_reads = params.server_io.single_flight_reads;
            // Shard s exports fsid s + 1; handle-addressed requests
            // route on nothing else.
            let fs = LocalFs::new(&sim, s as u32 + 1, disk, fsp);
            fs.spawn_update_daemon();
            shard_fs.push(fs);
            shard_cpu.push(Resource::new(&sim, format!("server{s}-cpu"), 1));
            shard_counter.push(OpCounter::new());
        }
        let rates = RateSeries::new(config::figure_bucket());
        let util = GaugeSeries::new();
        let latency = LatencyStats::new();
        let netp = if params.transport.switched {
            config::net_params().switched_full_duplex()
        } else {
            config::net_params()
        };
        let net = Network::new(&sim, "ether", netp);
        if params.faults.any() {
            net.set_faults(params.faults);
        }
        let transport_stats = TransportStats::new();
        let tracer = params.trace.then(|| {
            let t = Tracer::new(&sim);
            t.meta("protocol", params.protocol.label());
            t.meta("clients", n_clients.to_string());
            t.meta("disk_sched", params.server_io.sched.meta_value());
            t.meta("shards", n_shards.to_string());
            for fs in &shard_fs {
                fs.disk().set_tracer(t.clone());
                fs.set_tracer(t.clone());
            }
            net.set_tracer(t.clone());
            t
        });
        // Well-known directories, each created on the shard that owns
        // its name under the initial layout.
        let roots: Vec<FileHandle> = shard_fs.iter().map(|f| f.root()).collect();
        let mkdir_on = |name: &'static str| {
            let s = layout.borrow().owner(name) as usize;
            let fs = shard_fs[s].clone();
            let root = roots[s];
            sim.block_on(async move {
                let (fh, _) = fs.mkdir(root, name).await.expect("mkdir well-known dir");
                fh
            })
        };
        let src_dir = mkdir_on("src");
        let target_dir = mkdir_on("target");
        let tmp_dir = mkdir_on("tmp");
        // ---- per-shard servers + endpoints --------------------------------
        let mut ep_params = config::endpoint_params();
        ep_params.threads = params.server_io.service_threads;
        let mut shard_hosts: Vec<ShardHost> = Vec::new();
        for s in 0..n_shards {
            let mut sp = params.snfs_server;
            sp.delegation = params.delegation;
            let srv = SnfsServer::new(
                &sim,
                shard_fs[s].clone(),
                params.server_io.service_threads,
                sp,
            );
            if let Some(t) = &tracer {
                srv.set_tracer(t.clone());
            }
            srv.set_shard(s as u32, roots[s], Rc::clone(&layout));
            let ep = srv.endpoint(
                format!("snfsd{s}"),
                shard_cpu[s].clone(),
                ep_params,
                shard_counter[s].clone(),
            );
            ep.set_rate_series(rates.clone());
            if let Some(t) = &tracer {
                ep.set_tracer(t.clone());
            }
            shard_hosts.push(ShardHost {
                shard: s as u32,
                cpu: shard_cpu[s].clone(),
                fs: shard_fs[s].clone(),
                server: srv,
                endpoint: ep,
                counter: shard_counter[s].clone(),
            });
        }
        // ---- inter-shard coordination callers -----------------------------
        // Coordinator shard s reaches peer p through a dedicated caller
        // carrying ClientId(10_000 + s); all of s's peer callers share
        // one xid space. Their fault link is host 200 + s, so a chaos
        // script can sever one shard's coordination traffic without
        // touching any client's.
        for s in 0..n_shards {
            let mut first: Option<Caller<NfsRequest, NfsReply>> = None;
            for p in 0..n_shards {
                if p == s {
                    continue;
                }
                let mut c = Caller::new(
                    &sim,
                    net.clone(),
                    shard_hosts[p].endpoint.clone(),
                    ClientId(10_000 + s as u32),
                    shard_cpu[s].clone(),
                    config::caller_params(),
                );
                c.set_fault_link(200 + s as u32, false);
                if let Some(t) = &tracer {
                    c.set_tracer(t.clone());
                }
                match &first {
                    Some(f) => c.share_xids_with(f),
                    None => first = Some(c.clone()),
                }
                shard_hosts[s].server.register_peer(p as u32, c);
            }
        }
        // ---- clients ------------------------------------------------------
        let mut clients = Vec::new();
        let mut cb_endpoints = Vec::new();
        for i in 0..n_clients {
            let cid = ClientId(i as u32 + 1);
            let cpu = Resource::new(&sim, format!("client{}-cpu", cid.0), 1);
            let disk = Disk::new(&sim, format!("client{}-disk", cid.0), config::disk_params());
            let local_fs = LocalFs::new(
                &sim,
                100 + cid.0,
                disk,
                config::client_fs_params(params.update_enabled),
            );
            local_fs.spawn_update_daemon();
            let lroot = local_fs.root();
            let ltmp = {
                let fs = local_fs.clone();
                sim.block_on(async move {
                    let (t, _) = fs.mkdir(lroot, "tmp").await.expect("mkdir local tmp");
                    t
                })
            };
            // One caller per shard, all sharing this client's xid space
            // so retransmit detection and the per-shard duplicate caches
            // see one coherent (client, xid) stream.
            let mut callers: Vec<Caller<NfsRequest, NfsReply>> = Vec::new();
            for sh in &shard_hosts {
                let mut c = Caller::new(
                    &sim,
                    net.clone(),
                    sh.endpoint.clone(),
                    cid,
                    cpu.clone(),
                    config::caller_params(),
                );
                c.set_transport(params.transport);
                c.set_transport_stats(transport_stats.clone());
                c.set_latency_stats(latency.clone());
                if let Some(t) = &tracer {
                    c.set_tracer(t.clone());
                }
                if let Some(f) = callers.first() {
                    c.share_xids_with(f);
                }
                callers.push(c);
            }
            let shard_caller = ShardCaller::sharded(&sim, callers, roots.clone(), true);
            let client = SnfsClient::new(
                &sim,
                shard_caller,
                SnfsClientParams {
                    cache_blocks: params.client_cache_blocks,
                    write_delay: params.snfs_write_delay,
                    update_interval: params.update_enabled.then(|| SimDuration::from_secs(30)),
                    read_ahead: params.read_ahead,
                    read_ahead_window: params.read_ahead_window,
                    write_behind: params.write_behind,
                    delayed_close: params.protocol == Protocol::SnfsDelayedClose,
                    name_cache: params.name_cache,
                    delegation: params.delegation,
                    ..SnfsClientParams::default()
                },
            );
            if let Some(t) = &tracer {
                client.set_tracer(t.clone());
            }
            client.spawn_update_daemon();
            client.spawn_keepalive_daemon(SimDuration::from_secs(10));
            // One callback endpoint per client, registered with every
            // shard's server. The per-shard callback callers share one
            // xid space per client — two shards must never reuse an xid
            // against the same client's duplicate-request cache.
            let cb_ep = client.callback_endpoint(
                format!("cbsrv{}", cid.0),
                cpu.clone(),
                config::callback_endpoint_params(),
                shard_counter[0].clone(),
            );
            if let Some(t) = &tracer {
                cb_ep.set_tracer(t.clone());
            }
            cb_endpoints.push(cb_ep.clone());
            let mut first_cb: Option<
                Caller<spritely_proto::CallbackArg, spritely_proto::CallbackReply>,
            > = None;
            for sh in &shard_hosts {
                let mut cb_caller = Caller::new(
                    &sim,
                    net.clone(),
                    cb_ep.clone(),
                    ClientId(0),
                    sh.cpu.clone(),
                    config::caller_params(),
                );
                cb_caller.set_fault_link(cid.0, true);
                if let Some(t) = &tracer {
                    cb_caller.set_tracer(t.clone());
                }
                match &first_cb {
                    Some(f) => cb_caller.share_xids_with(f),
                    None => first_cb = Some(cb_caller.clone()),
                }
                sh.server.register_client(cid, cb_caller);
            }
            // ---- mounts ----
            let backend = FsBackend::Snfs(client.clone());
            let mut mounts = vec![Mount::new("/", FsBackend::Local(local_fs.clone()), lroot)];
            mounts.push(Mount::new("/remote", backend.clone(), roots[0]));
            let tmp_backend = if params.tmp_remote {
                Mount::new("/usr/tmp", backend.clone(), tmp_dir)
            } else {
                Mount::new("/usr/tmp", FsBackend::Local(local_fs.clone()), ltmp)
            };
            mounts.push(tmp_backend);
            let vfs = Vfs::new(mounts);
            clients.push(ClientHost {
                cpu,
                local_fs,
                remote: RemoteClient::Snfs(client),
                vfs,
            });
        }
        Testbed {
            sim,
            params,
            server_cpu: shard_cpu[0].clone(),
            server_fs: shard_fs[0].clone(),
            snfs_server: Some(shard_hosts[0].server.clone()),
            counter: shard_counter[0].clone(),
            rates,
            latency,
            util,
            net,
            transport_stats,
            tracer,
            endpoint: Some(shard_hosts[0].endpoint.clone()),
            cb_endpoints,
            clients,
            server_dirs: (src_dir, target_dir, tmp_dir),
            shard_hosts,
            layout: Some(layout),
        }
    }

    /// A process on the first client host.
    pub fn proc(&self) -> Proc {
        self.clients[0].proc(&self.sim)
    }

    /// Finishes the trace (if tracing was on) and runs the invariant
    /// checker over it. Runners call this at the end of a run.
    pub fn finish_trace(&self) -> Option<crate::snapshot::TraceReport> {
        self.tracer
            .as_ref()
            .map(|t| crate::snapshot::TraceReport::from_events(t.finish()))
    }

    /// Unified statistics snapshot of every host (serializable; see
    /// [`crate::snapshot::StatsSnapshot`]).
    pub fn stats_snapshot(&self) -> crate::snapshot::StatsSnapshot {
        let clients = self
            .clients
            .iter()
            .enumerate()
            .filter_map(|(i, host)| {
                let id = i as u32 + 1;
                match &host.remote {
                    RemoteClient::None => None,
                    RemoteClient::Nfs(c) => {
                        let (hits, misses) = c.cache_stats();
                        Some(crate::snapshot::ClientSnapshot {
                            id,
                            cache_hits: hits,
                            cache_misses: misses,
                            dirty_blocks: 0,
                            snfs: None,
                        })
                    }
                    RemoteClient::Snfs(c) => {
                        let (hits, misses) = c.cache_stats();
                        Some(crate::snapshot::ClientSnapshot {
                            id,
                            cache_hits: hits,
                            cache_misses: misses,
                            dirty_blocks: c.dirty_blocks() as u64,
                            snfs: Some(c.stats()),
                        })
                    }
                }
            })
            .collect();
        let disk = self.server_fs.disk();
        let (cache_hits, cache_misses) = self.server_fs.cache_stats();
        let dstats = disk.stats();
        let attr_elisions: u64 = self
            .clients
            .iter()
            .map(|host| match &host.remote {
                RemoteClient::None => 0,
                RemoteClient::Nfs(c) => c.elided_probes(),
                RemoteClient::Snfs(c) => c.stats().attr_piggybacks,
            })
            .sum();
        let ts = &self.transport_stats;
        let rpc_total = if self.shard_hosts.is_empty() {
            self.counter.snapshot().total()
        } else {
            self.shard_hosts
                .iter()
                .map(|sh| sh.counter.snapshot().total())
                .sum()
        };
        crate::snapshot::StatsSnapshot {
            protocol: self.params.protocol.label().to_string(),
            rpc_total,
            clients,
            server: self
                .snfs_server
                .as_ref()
                .map(|srv| crate::snapshot::ServerSnapshot {
                    stats: srv.stats(),
                    callback_peak: srv.callback_gauge().peak(),
                    table_entries: srv.table_len() as u64,
                }),
            server_io: crate::snapshot::ServerIoSnapshot {
                cache_hits,
                cache_misses,
                disk_reads: dstats.reads,
                disk_writes: dstats.writes,
                disk_queue_peak: disk.queue_depth().peak(),
                disk_requests: disk.wait_ms().count(),
                disk_wait_ms_sum: disk.wait_ms().sum(),
                disk_wait_ms_max: disk.wait_ms().max(),
                disk_pos_ms_sum: disk.pos_ms().sum(),
            },
            transport: crate::snapshot::TransportSnapshot {
                net_messages: self.net.messages(),
                net_bytes: self.net.bytes(),
                wire_busy_ms: (self.net.busy_micros() / 1000) as u64,
                batches: ts.batch_sizes.count(),
                batched_calls: ts.batch_sizes.sum(),
                max_batch: ts.batch_sizes.max(),
                saved_round_trips: ts.saved.snapshot().total(),
                attr_elisions,
                saved_per_proc: ts.saved.snapshot(),
            },
            sim: self.sim.stats().into(),
            faults: self.net.faults_active().then(|| {
                let fs = self.net.fault_stats();
                let (mut dup_cache_hits, mut dup_cache_joins) = self
                    .endpoint
                    .as_ref()
                    .map_or((0, 0), |ep| (ep.dup_hits(), ep.dup_joins()));
                // Extra shards' endpoints (shard 0 is `self.endpoint`).
                for sh in self.shard_hosts.iter().skip(1) {
                    dup_cache_hits += sh.endpoint.dup_hits();
                    dup_cache_joins += sh.endpoint.dup_joins();
                }
                // Retransmitted callbacks (write-back, invalidate,
                // recall) are replayed from the *clients'* endpoint
                // caches; count them too.
                for ep in &self.cb_endpoints {
                    dup_cache_hits += ep.dup_hits();
                    dup_cache_joins += ep.dup_joins();
                }
                crate::snapshot::FaultSnapshot {
                    drops: fs.drops(),
                    dups: fs.dups(),
                    delays: fs.delays(),
                    reply_losses: fs.reply_losses(),
                    partition_drops: fs.partition_drops(),
                    killed_attempts: fs.killed_attempts(),
                    retransmit_absorbed: fs.retransmit_absorbed(),
                    outstanding_kills: fs.outstanding_kills(),
                    dup_cache_hits,
                    dup_cache_joins,
                    callback_retries: if self.shard_hosts.is_empty() {
                        self.snfs_server
                            .as_ref()
                            .map_or(0, |srv| srv.callback_retries())
                    } else {
                        self.shard_hosts
                            .iter()
                            .map(|sh| sh.server.callback_retries())
                            .sum()
                    },
                    callback_dupes: self
                        .clients
                        .iter()
                        .map(|host| match &host.remote {
                            RemoteClient::Snfs(c) => c.callback_dupes(),
                            _ => 0,
                        })
                        .sum(),
                }
            }),
            profile: self
                .tracer
                .as_ref()
                .map(|t| (&spritely_trace::profile_trace(&t.finish())).into()),
            delegation: self.params.delegation.enabled.then(|| {
                // Server side carries grants/recalls/returns/revokes and
                // the latency histogram; the clients contribute the local
                // fast-path counters. Merge into one DelegationStats.
                let mut stats: DelegationStats = self
                    .snfs_server
                    .as_ref()
                    .map(|srv| srv.delegation_stats())
                    .unwrap_or_default();
                let mut held = 0u64;
                for host in &self.clients {
                    if let RemoteClient::Snfs(c) = &host.remote {
                        let cs = c.delegation_stats();
                        stats.local_opens += cs.local_opens;
                        stats.local_closes += cs.local_closes;
                        held += c.delegations_held() as u64;
                    }
                }
                crate::snapshot::DelegationSnapshot { stats, held }
            }),
            shards: (!self.shard_hosts.is_empty()).then(|| {
                let peak_blocks = self
                    .clients
                    .iter()
                    .map(|host| match &host.remote {
                        RemoteClient::Snfs(c) => c.peak_cache_blocks(),
                        _ => 0,
                    })
                    .max()
                    .unwrap_or(0);
                crate::snapshot::ShardsSnapshot {
                    n: self.shard_hosts.len() as u64,
                    peak_client_kb: (peak_blocks * BLOCK_SIZE) as u64 / 1024,
                    shards: self
                        .shard_hosts
                        .iter()
                        .map(|sh| {
                            let ops = sh.server.shard_stats();
                            crate::snapshot::ShardSnapshot {
                                shard: sh.shard,
                                rpcs: sh.counter.snapshot().total(),
                                dup_hits: sh.endpoint.dup_hits(),
                                table_entries: sh.server.table_len() as u64,
                                cross_renames: ops.cross_renames,
                                cross_links: ops.cross_links,
                                wrong_shard_replies: ops.wrong_shard_replies,
                                busy_rejections: ops.busy_rejections,
                                lock_contention: ops.lock_contention,
                                dup_contention: sh.endpoint.dup_contention(),
                            }
                        })
                        .collect(),
                }
            }),
        }
    }

    /// Spawns a sampler recording server CPU utilization once per figure
    /// bucket.
    pub fn spawn_utilization_sampler(&self) {
        let sim = self.sim.clone();
        let cpu = self.server_cpu.clone();
        let util = self.util.clone();
        let bucket = config::figure_bucket();
        self.sim.spawn(async move {
            let mut last_busy = cpu.busy_permit_micros();
            loop {
                let start = sim.now();
                sim.sleep(bucket).await;
                let busy = cpu.busy_permit_micros();
                let frac =
                    (busy - last_busy) as f64 / (bucket.as_micros() as f64 * cpu.capacity() as f64);
                util.push(sim.now(), frac);
                last_busy = busy;
                let _ = start;
            }
        });
    }
}
