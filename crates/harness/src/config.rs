//! Calibrated timing constants (DESIGN.md §8).
//!
//! These model the paper's testbed: Titan workstations (≈12–15× a
//! VAX-11/780), RA81/RA82 disks, 10 Mbit/s Ethernet, Sun-RPC/UDP. The
//! absolute values are educated period estimates; what the experiments
//! depend on is their *ratios* — a synchronous 4 KB write RPC costs
//! network (≈3.3 ms) + server CPU (≈0.8 ms) + disk (≈26–30 ms), so
//! write-through dominates elapsed time, while a server-cache read RPC is
//! ≈4–5 ms and a client-cache hit is ≈0.2 ms of CPU.

use spritely_blockdev::DiskParams;
use spritely_localfs::FsParams;
use spritely_rpcnet::{CallerParams, EndpointParams, NetParams};
use spritely_sim::SimDuration;
use spritely_vfs::SyscallCosts;

/// Number of service threads on the server (≥ 2 for SNFS, §3.2).
pub const SERVER_THREADS: usize = 4;

/// Server buffer cache: ≈3.5 MB (paper §5.2) at 4 KB blocks.
pub const SERVER_CACHE_BLOCKS: usize = 896;

/// Client buffer cache: ≈16 MB (paper §5.2) at 4 KB blocks.
pub const CLIENT_CACHE_BLOCKS: usize = 4096;

/// RA81-class server/client disk.
pub fn disk_params() -> DiskParams {
    DiskParams::ra81()
}

/// 10 Mbit/s shared Ethernet.
pub fn net_params() -> NetParams {
    NetParams::ethernet_10mbit()
}

/// Server file system (update daemon on by default).
pub fn server_fs_params(update_enabled: bool) -> FsParams {
    FsParams {
        cache_blocks: SERVER_CACHE_BLOCKS,
        update_interval: update_enabled.then(|| SimDuration::from_secs(30)),
        update_min_age: SimDuration::ZERO,
        charge_structural: true,
        sync_inode_writes: true,
        single_flight_reads: false,
    }
}

/// Client local-disk file system.
pub fn client_fs_params(update_enabled: bool) -> FsParams {
    FsParams {
        cache_blocks: CLIENT_CACHE_BLOCKS,
        update_interval: update_enabled.then(|| SimDuration::from_secs(30)),
        update_min_age: SimDuration::ZERO,
        charge_structural: true,
        sync_inode_writes: true,
        single_flight_reads: false,
    }
}

/// Server endpoint: per-call CPU dominates (the paper found server load
/// correlated with aggregate call rate, not data rates).
pub fn endpoint_params() -> EndpointParams {
    EndpointParams {
        threads: SERVER_THREADS,
        cpu_per_call: SimDuration::from_micros(900),
        cpu_per_kb: SimDuration::from_micros(120),
        dup_retention: SimDuration::from_secs(60),
    }
}

/// Client callback-service endpoint (reuses the NFS server code, §4.2.2).
pub fn callback_endpoint_params() -> EndpointParams {
    EndpointParams {
        threads: 2,
        cpu_per_call: SimDuration::from_micros(600),
        cpu_per_kb: SimDuration::from_micros(120),
        dup_retention: SimDuration::from_secs(60),
    }
}

/// RPC caller: 1 s timeout, 4 retransmissions, small marshal cost.
pub fn caller_params() -> CallerParams {
    CallerParams {
        timeout: SimDuration::from_secs(1),
        max_retries: 4,
        cpu_per_call: SimDuration::from_micros(350),
    }
}

/// Per-syscall client CPU.
pub fn syscall_costs() -> SyscallCosts {
    SyscallCosts {
        per_call: SimDuration::from_micros(120),
        per_kb: SimDuration::from_micros(40),
    }
}

/// Utilization/rate sampling bucket for the figures. The paper plots
/// ~10 s resolution over a 600 s axis; our virtual timescale is
/// compressed (the simulated compiler is faster than the 1989 portable
/// compiler), so a 5 s bucket gives a comparable number of points.
pub fn figure_bucket() -> SimDuration {
    SimDuration::from_secs(5)
}
