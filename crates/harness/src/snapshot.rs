//! Serializable end-of-run observability artifacts: a unified
//! client/server statistics snapshot (JSON) and the checked event trace.
//!
//! The paper reports its results as tables distilled from counters the
//! kernels kept (§5); this module is the simulation's equivalent of
//! dumping those counters at the end of a run, in a form other tools
//! can consume.

use spritely_core::{ClientStats, DelegationStats, ServerStats};
use spritely_trace::{check_trace, to_chrome_json, to_jsonl, TraceEvent, Violation};

/// One client host's counters at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientSnapshot {
    /// Client id (1-based, as on the wire).
    pub id: u32,
    /// Data-cache hits.
    pub cache_hits: u64,
    /// Data-cache misses.
    pub cache_misses: u64,
    /// Dirty blocks still awaiting write-back when the snapshot was taken.
    pub dirty_blocks: u64,
    /// SNFS-specific counters (None for a plain-NFS client).
    pub snfs: Option<ClientStats>,
}

/// Server I/O pipeline counters: the exported file system's block cache
/// and the disk queue behind it (present for every protocol — plain NFS
/// exercises the same server disk).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerIoSnapshot {
    /// Server block-cache hits on the read path.
    pub cache_hits: u64,
    /// Server block-cache misses on the read path.
    pub cache_misses: u64,
    /// Completed disk reads.
    pub disk_reads: u64,
    /// Completed disk writes.
    pub disk_writes: u64,
    /// Peak disk-queue depth (queued + in service).
    pub disk_queue_peak: u64,
    /// Requests that went through the disk queue.
    pub disk_requests: u64,
    /// Total queue wait across requests, in milliseconds.
    pub disk_wait_ms_sum: u64,
    /// Worst single-request queue wait, in milliseconds.
    pub disk_wait_ms_max: u64,
    /// Total arm positioning time across requests, in milliseconds.
    pub disk_pos_ms_sum: u64,
}

/// Transport-pipeline counters: wire traffic, batching, and piggyback
/// consumption. On the paper transport everything except the raw
/// message/byte counters is zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Messages put on the wire (requests + replies; a compound batch is
    /// one message).
    pub net_messages: u64,
    /// Bytes put on the wire.
    pub net_bytes: u64,
    /// Total medium busy time, in milliseconds (aggregated across lanes
    /// on a switched network).
    pub wire_busy_ms: u64,
    /// Compound batches flushed.
    pub batches: u64,
    /// Requests that travelled inside those batches.
    pub batched_calls: u64,
    /// Largest batch flushed.
    pub max_batch: u64,
    /// Round trips saved by batching (requests after the first in each
    /// batch).
    pub saved_round_trips: u64,
    /// `getattr` round trips elided by piggybacked post-op attributes
    /// (NFS open probes + SNFS write-shared stats).
    pub attr_elisions: u64,
    /// Round trips saved by batching, broken down by procedure.
    pub saved_per_proc: spritely_metrics::OpCounts,
}

/// Fault-injection accounting (present only when the run configured the
/// fault layer — a fault-free run's snapshot is byte-identical to one
/// taken before the layer existed). The conservation law
/// `killed_attempts == retransmit_absorbed + outstanding_kills` must
/// hold at the end of any quiescent run, and `outstanding_kills == 0`
/// means every injected fault was ridden out by a retransmission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Request messages lost by the random drop stream.
    pub drops: u64,
    /// Request messages delivered twice.
    pub dups: u64,
    /// Messages given extra random delay.
    pub delays: u64,
    /// Replies lost after the server executed (random + scripted).
    pub reply_losses: u64,
    /// Messages lost to scripted partitions.
    pub partition_drops: u64,
    /// RPC attempts killed by any fault.
    pub killed_attempts: u64,
    /// Killed attempts absorbed because a later attempt of the same call
    /// completed.
    pub retransmit_absorbed: u64,
    /// Killed attempts whose call never completed (caller gave up).
    pub outstanding_kills: u64,
    /// Retransmits answered from the server's duplicate-request cache
    /// (completed executions replayed, not re-run).
    pub dup_cache_hits: u64,
    /// Retransmits that joined a still-executing first attempt.
    pub dup_cache_joins: u64,
    /// Callback attempts the server retried instead of declaring the
    /// client crashed.
    pub callback_retries: u64,
    /// Duplicated callback deliveries absorbed by the clients' sequence
    /// guards (summed across clients).
    pub callback_dupes: u64,
}

/// Executor counters for the run: what the discrete-event scheduler
/// itself did. `events_retired = polls + timer_fires` is the numerator
/// of the `sim_speed` events/sec figure, and the `peak_*` fields are a
/// memory-footprint proxy (slab / heap / queue high-water marks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimSnapshot {
    /// Scheduler events retired: task polls + timer firings.
    pub events_retired: u64,
    /// Task polls performed.
    pub polls: u64,
    /// Tasks spawned.
    pub tasks_spawned: u64,
    /// Ready-queue pops for already-finished tasks.
    pub stale_wakes: u64,
    /// Timers registered.
    pub timers_registered: u64,
    /// Timers that fired.
    pub timer_fires: u64,
    /// Timers cancelled before firing (dropped `Sleep`s).
    pub timer_cancels: u64,
    /// Distinct instants the virtual clock visited.
    pub clock_advances: u64,
    /// High-water mark of the ready queue.
    pub peak_ready_depth: u64,
    /// High-water mark of live tasks.
    pub peak_live_tasks: u64,
    /// High-water mark of live timers.
    pub peak_live_timers: u64,
}

impl From<spritely_sim::SimStats> for SimSnapshot {
    fn from(s: spritely_sim::SimStats) -> Self {
        SimSnapshot {
            events_retired: s.events_retired(),
            polls: s.polls,
            tasks_spawned: s.tasks_spawned,
            stale_wakes: s.stale_wakes,
            timers_registered: s.timers_registered,
            timer_fires: s.timer_fires,
            timer_cancels: s.timer_cancels,
            clock_advances: s.clock_advances,
            peak_ready_depth: s.peak_ready_depth,
            peak_live_tasks: s.peak_live_tasks,
            peak_live_timers: s.peak_live_timers,
        }
    }
}

/// Compact summary of a trace-replay latency profile (DESIGN.md §16):
/// span/claim counts and the run-wide phase breakdown. Present only
/// when the run was traced — an unprofiled snapshot serializes
/// byte-identically to one taken before the profiler existed. The full
/// per-op-kind and occupancy detail lives in
/// [`spritely_trace::Profile::to_json`] (`artifacts/profile_*.json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Reconstructed spans (client-visible ops + synthetic spans).
    pub spans: u64,
    /// `rpc_call` events in the trace.
    pub rpcs: u64,
    /// RPCs claimed by a client op span.
    pub claimed_op: u64,
    /// Server-originated callback RPCs claimed inside handlers.
    pub claimed_callback: u64,
    /// Background RPCs (each its own synthetic span).
    pub claimed_background: u64,
    /// RPCs with no reply in the trace.
    pub claimed_incomplete: u64,
    /// Sum of span wall-clock latencies, µs.
    pub total_op_us: u64,
    /// Portion of `total_op_us` attributed to named phases, µs.
    pub attributed_us: u64,
    /// `(phase name, attributed µs)` in `Phase::ALL` order.
    pub phase_us: Vec<(&'static str, u64)>,
}

impl From<&spritely_trace::Profile> for ProfileSnapshot {
    fn from(p: &spritely_trace::Profile) -> Self {
        ProfileSnapshot {
            spans: p.ops.len() as u64,
            rpcs: p.total_rpcs,
            claimed_op: p.claims.op,
            claimed_callback: p.claims.callback,
            claimed_background: p.claims.background,
            claimed_incomplete: p.claims.incomplete,
            total_op_us: p.total_us,
            attributed_us: p.total_us - p.phase_total(spritely_trace::Phase::Unattributed),
            phase_us: spritely_trace::Phase::ALL
                .iter()
                .map(|&ph| (ph.name(), p.phase_total(ph)))
                .collect(),
        }
    }
}

/// Delegation-subsystem accounting (present only when the run enabled
/// delegations — a paper-mode snapshot serializes byte-identically to
/// one taken before the subsystem existed). Server-side counters
/// (grants, recalls, returns, revokes, recall latency) come from the
/// SNFS server; the local fast-path counters are summed across clients.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DelegationSnapshot {
    /// Merged counters: server grant/recall/return/revoke side plus the
    /// clients' local_opens/local_closes.
    pub stats: DelegationStats,
    /// Delegations still held by clients at snapshot time.
    pub held: u64,
}

/// One shard's slice of a sharded run (DESIGN.md §18): its endpoint
/// traffic, duplicate-request cache, state-table occupancy, and the
/// cross-shard coordination counters its server kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index (0-based; shard `s` exports `fsid = s + 1`).
    pub shard: u32,
    /// RPCs this shard's endpoint served (shard 0 also counts the
    /// per-client callback deliveries, mirroring the unsharded counter).
    pub rpcs: u64,
    /// Retransmits replayed from this shard's duplicate-request cache.
    pub dup_hits: u64,
    /// State-table entries at snapshot time.
    pub table_entries: u64,
    /// Cross-shard renames this shard coordinated.
    pub cross_renames: u64,
    /// Cross-shard links this shard coordinated.
    pub cross_links: u64,
    /// `WrongShard` redirects served to stale-layout clients.
    pub wrong_shard_replies: u64,
    /// `Busy` rejections while a name was locked by a transaction.
    pub busy_rejections: u64,
    /// Per-file lock acquisitions that queued behind another holder.
    pub lock_contention: u64,
    /// Duplicate-cache bucket collisions: fresh arrivals that found
    /// another execution in flight on their hash bucket — what a
    /// per-bucket lock would have serialized.
    pub dup_contention: u64,
}

/// Sharded-namespace accounting (present only when the run sharded the
/// export — a single-server snapshot serializes byte-identically to one
/// taken before sharding existed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardsSnapshot {
    /// Number of shards.
    pub n: u64,
    /// Largest per-client peak data-cache footprint, in KiB. Client
    /// caches allocate lazily, so hundreds of idle clients keep this
    /// near zero regardless of configured capacity.
    pub peak_client_kb: u64,
    /// Per-shard counters, in shard order.
    pub shards: Vec<ShardSnapshot>,
}

/// The server's counters at the end of a run (SNFS protocols only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// Callback statistics.
    pub stats: ServerStats,
    /// Peak concurrent callbacks (must stay ≤ N−1, §3.2).
    pub callback_peak: u64,
    /// State-table entries at snapshot time.
    pub table_entries: u64,
}

/// Unified, serializable view of every statistics structure a run
/// produces. `to_json` is hand-rolled (stable field order, no deps).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Protocol label ("SNFS", "NFS", ...).
    pub protocol: String,
    /// Total RPCs the server endpoint served.
    pub rpc_total: u64,
    /// Per-client counters, in client-id order.
    pub clients: Vec<ClientSnapshot>,
    /// Server counters (SNFS only).
    pub server: Option<ServerSnapshot>,
    /// Server-side cache and disk-queue counters (all protocols).
    pub server_io: ServerIoSnapshot,
    /// Transport-pipeline counters (all protocols).
    pub transport: TransportSnapshot,
    /// Executor counters (all protocols).
    pub sim: SimSnapshot,
    /// Fault-injection accounting (None unless faults were configured;
    /// a fault-free snapshot serializes without this field).
    pub faults: Option<FaultSnapshot>,
    /// Latency-profile summary (None unless the run was traced; an
    /// unprofiled snapshot serializes without this field).
    pub profile: Option<ProfileSnapshot>,
    /// Delegation accounting (None unless delegations were enabled; a
    /// paper-mode snapshot serializes without this field).
    pub delegation: Option<DelegationSnapshot>,
    /// Sharded-namespace accounting (None unless the export was sharded;
    /// a single-server snapshot serializes without this field).
    pub shards: Option<ShardsSnapshot>,
}

impl StatsSnapshot {
    /// Serializes the snapshot as a single JSON object with stable field
    /// order (byte-identical across identical runs).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"protocol\":\"{}\",\"rpc_total\":{},\"clients\":[",
            self.protocol, self.rpc_total
        ));
        for (i, c) in self.clients.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"cache_hits\":{},\"cache_misses\":{},\"dirty_blocks\":{}",
                c.id, c.cache_hits, c.cache_misses, c.dirty_blocks
            ));
            if let Some(s) = &c.snfs {
                out.push_str(&format!(
                    ",\"cancelled_blocks\":{},\"written_back_blocks\":{},\
                     \"callbacks_served\":{},\"invalidations\":{},\"local_reopens\":{},\
                     \"recoveries\":{},\"name_cache_hits\":{},\"writeback_failures\":{},\
                     \"attr_piggybacks\":{}",
                    s.cancelled_blocks,
                    s.written_back_blocks,
                    s.callbacks_served,
                    s.invalidations,
                    s.local_reopens,
                    s.recoveries,
                    s.name_cache_hits,
                    s.writeback_failures,
                    s.attr_piggybacks
                ));
            }
            out.push('}');
        }
        out.push_str("],\"server\":");
        match &self.server {
            None => out.push_str("null"),
            Some(s) => out.push_str(&format!(
                "{{\"callbacks_sent\":{},\"callbacks_failed\":{},\"reclaim_passes\":{},\
                 \"callback_peak\":{},\"table_entries\":{}}}",
                s.stats.callbacks_sent,
                s.stats.callbacks_failed,
                s.stats.reclaim_passes,
                s.callback_peak,
                s.table_entries
            )),
        }
        let io = &self.server_io;
        out.push_str(&format!(
            ",\"server_io\":{{\"cache_hits\":{},\"cache_misses\":{},\
             \"disk_reads\":{},\"disk_writes\":{},\"disk_queue_peak\":{},\
             \"disk_requests\":{},\"disk_wait_ms_sum\":{},\"disk_wait_ms_max\":{},\
             \"disk_pos_ms_sum\":{}}}",
            io.cache_hits,
            io.cache_misses,
            io.disk_reads,
            io.disk_writes,
            io.disk_queue_peak,
            io.disk_requests,
            io.disk_wait_ms_sum,
            io.disk_wait_ms_max,
            io.disk_pos_ms_sum
        ));
        let t = &self.transport;
        out.push_str(&format!(
            ",\"transport\":{{\"net_messages\":{},\"net_bytes\":{},\
             \"wire_busy_ms\":{},\"batches\":{},\"batched_calls\":{},\
             \"max_batch\":{},\"saved_round_trips\":{},\"attr_elisions\":{},\
             \"saved_per_proc\":{{",
            t.net_messages,
            t.net_bytes,
            t.wire_busy_ms,
            t.batches,
            t.batched_calls,
            t.max_batch,
            t.saved_round_trips,
            t.attr_elisions
        ));
        for (i, (p, n)) in t.saved_per_proc.nonzero().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", p.name(), n));
        }
        out.push_str("}}");
        let s = &self.sim;
        out.push_str(&format!(
            ",\"sim\":{{\"events_retired\":{},\"polls\":{},\"tasks_spawned\":{},\
             \"stale_wakes\":{},\"timers_registered\":{},\"timer_fires\":{},\
             \"timer_cancels\":{},\"clock_advances\":{},\"peak_ready_depth\":{},\
             \"peak_live_tasks\":{},\"peak_live_timers\":{}}}",
            s.events_retired,
            s.polls,
            s.tasks_spawned,
            s.stale_wakes,
            s.timers_registered,
            s.timer_fires,
            s.timer_cancels,
            s.clock_advances,
            s.peak_ready_depth,
            s.peak_live_tasks,
            s.peak_live_timers
        ));
        if let Some(f) = &self.faults {
            out.push_str(&format!(
                ",\"faults\":{{\"drops\":{},\"dups\":{},\"delays\":{},\
                 \"reply_losses\":{},\"partition_drops\":{},\"killed_attempts\":{},\
                 \"retransmit_absorbed\":{},\"outstanding_kills\":{},\
                 \"dup_cache_hits\":{},\"dup_cache_joins\":{},\
                 \"callback_retries\":{},\"callback_dupes\":{}}}",
                f.drops,
                f.dups,
                f.delays,
                f.reply_losses,
                f.partition_drops,
                f.killed_attempts,
                f.retransmit_absorbed,
                f.outstanding_kills,
                f.dup_cache_hits,
                f.dup_cache_joins,
                f.callback_retries,
                f.callback_dupes
            ));
        }
        if let Some(p) = &self.profile {
            out.push_str(&format!(
                ",\"profile\":{{\"spans\":{},\"rpcs\":{},\
                 \"claimed\":{{\"op\":{},\"callback\":{},\"background\":{},\
                 \"incomplete\":{}}},\"total_op_us\":{},\"attributed_us\":{},\
                 \"phase_us\":{{",
                p.spans,
                p.rpcs,
                p.claimed_op,
                p.claimed_callback,
                p.claimed_background,
                p.claimed_incomplete,
                p.total_op_us,
                p.attributed_us
            ));
            for (i, (name, us)) in p.phase_us.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":{us}"));
            }
            out.push_str("}}");
        }
        if let Some(d) = &self.delegation {
            let s = &d.stats;
            out.push_str(&format!(
                ",\"delegation\":{{\"grants_read\":{},\"grants_write\":{},\
                 \"local_opens\":{},\"local_closes\":{},\"recalls\":{},\
                 \"returns\":{},\"revokes\":{},\"held\":{},\
                 \"recall_latency_buckets\":[{},{},{},{},{}]}}",
                s.grants_read,
                s.grants_write,
                s.local_opens,
                s.local_closes,
                s.recalls,
                s.returns,
                s.revokes,
                d.held,
                s.recall_latency.buckets[0],
                s.recall_latency.buckets[1],
                s.recall_latency.buckets[2],
                s.recall_latency.buckets[3],
                s.recall_latency.buckets[4]
            ));
        }
        if let Some(sh) = &self.shards {
            out.push_str(&format!(
                ",\"shards\":{{\"n\":{},\"peak_client_kb\":{},\"per_shard\":[",
                sh.n, sh.peak_client_kb
            ));
            for (i, s) in sh.shards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"shard\":{},\"rpcs\":{},\"dup_hits\":{},\"table_entries\":{},\
                     \"cross_renames\":{},\"cross_links\":{},\"wrong_shard_replies\":{},\
                     \"busy_rejections\":{},\"lock_contention\":{},\"dup_contention\":{}}}",
                    s.shard,
                    s.rpcs,
                    s.dup_hits,
                    s.table_entries,
                    s.cross_renames,
                    s.cross_links,
                    s.wrong_shard_replies,
                    s.busy_rejections,
                    s.lock_contention,
                    s.dup_contention
                ));
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

/// A finished, checked trace: the event log plus every invariant
/// violation the offline checker found (empty on a correct run).
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The recorded events, in emission (= causal) order.
    pub events: Vec<TraceEvent>,
    /// Invariant violations found by [`spritely_trace::check_trace`].
    pub violations: Vec<Violation>,
}

impl TraceReport {
    /// Finishes `tracer` and runs the invariant checker over the log.
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        let violations = check_trace(&events);
        TraceReport { events, violations }
    }

    /// True when the checker found nothing wrong.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The trace as JSON-lines (byte-stable across identical runs).
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.events)
    }

    /// The trace as a Chrome `trace_event` JSON document
    /// (load in Perfetto / `chrome://tracing`).
    pub fn to_chrome_json(&self) -> String {
        to_chrome_json(&self.events)
    }
}
