//! Andrew-benchmark experiment runner (Tables 5-1/5-2, Figures 5-1/5-2).

use spritely_blockdev::DiskStats;
use spritely_metrics::{OpCounts, RateBucket};
use spritely_sim::{SimDuration, SimTime};
use spritely_workloads::{AndrewBenchmark, AndrewConfig, AndrewParams, AndrewTimes};

use crate::testbed::{Protocol, Testbed, TestbedParams};

/// Everything measured from one Andrew run.
pub struct AndrewRun {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Was `/usr/tmp` remote-mounted?
    pub tmp_remote: bool,
    /// Per-phase elapsed times (Table 5-1).
    pub times: AndrewTimes,
    /// Per-procedure RPC counts during the benchmark (Table 5-2).
    pub ops: OpCounts,
    /// RPC counts including the post-benchmark write-back tail.
    pub ops_with_tail: OpCounts,
    /// Server disk activity during the benchmark.
    pub server_disk: DiskStats,
    /// Figure series: per-bucket call counts.
    pub rate_buckets: Vec<RateBucket>,
    /// Figure series: per-bucket server CPU utilization.
    pub util_samples: Vec<(SimTime, f64)>,
    /// End-to-end RPC latency per procedure.
    pub latency: spritely_metrics::LatencyStats,
    /// Unified end-of-run statistics snapshot (serializable).
    pub stats: crate::snapshot::StatsSnapshot,
    /// Checked event trace (present when `TestbedParams::trace` was on).
    pub trace: Option<crate::snapshot::TraceReport>,
    /// Path-ordered digest of the server's stable contents after the
    /// write-back tail drained (the chaos harness compares faulted runs
    /// against fault-free ones with this).
    pub server_digest: u64,
}

/// Column label like `"SNFS /tmp-remote"`.
impl AndrewRun {
    /// Column label for tables.
    pub fn label(&self) -> String {
        if self.protocol == Protocol::Local {
            "local".to_string()
        } else if self.tmp_remote {
            format!("{} tmp-rem", self.protocol.label())
        } else {
            format!("{} tmp-loc", self.protocol.label())
        }
    }
}

/// Runs the Andrew benchmark once on a fresh testbed.
///
/// The benchmark proper is timed phase by phase; afterwards the
/// simulation idles another 120 virtual seconds so delayed write-backs
/// drain into the figure series (the paper ran SNFS trials back to back
/// for the same reason, §5.2).
pub fn run_andrew(protocol: Protocol, tmp_remote: bool, seed: u64) -> AndrewRun {
    run_andrew_with(
        TestbedParams {
            protocol,
            tmp_remote,
            ..TestbedParams::default()
        },
        seed,
    )
}

/// [`run_andrew`] with full control of the testbed (for ablations).
pub fn run_andrew_with(params: TestbedParams, seed: u64) -> AndrewRun {
    let protocol = params.protocol;
    let tmp_remote = params.tmp_remote;
    let tb = Testbed::build(params);
    let bench = AndrewBenchmark::new(seed, AndrewParams::default());
    let cfg = AndrewConfig {
        src_base: "/remote/src".to_string(),
        target_base: "/remote/target".to_string(),
        tmp_base: "/usr/tmp".to_string(),
    };
    // Setup (untimed): create the source tree. The benchmark spec is
    // deterministic in the seed, so a second instance is identical.
    {
        let p = tb.proc();
        let cfg_src = cfg.src_base.clone();
        let setup_bench = AndrewBenchmark::new(seed, AndrewParams::default());
        let sim = tb.sim.clone();
        let h = tb.sim.spawn(async move {
            setup_bench
                .populate_source(&p, &cfg_src)
                .await
                .expect("populate source");
            // Let the setup's delayed writes drain so they are not charged
            // to the measurement window (they belong to setup, not to the
            // benchmark).
            sim.sleep(SimDuration::from_secs(65)).await;
        });
        tb.sim.run_until(h);
        // The benchmark starts from a cold client cache: in the paper the
        // source tree pre-exists at the server, it was not written moments
        // earlier by the measuring client.
        let boot = match tb.clients[0].remote.clone() {
            crate::RemoteClient::None => None,
            crate::RemoteClient::Nfs(c) => Some(tb.sim.spawn(async move {
                c.cold_boot().await.expect("cold boot");
            })),
            crate::RemoteClient::Snfs(c) => Some(tb.sim.spawn(async move {
                c.cold_boot().await.expect("cold boot");
            })),
        };
        if let Some(h) = boot {
            tb.sim.run_until(h);
        }
    }
    // Measurement window starts here.
    let bench_start = tb.sim.now();
    let ops_before = tb.counter.snapshot();
    let disk_before = tb.server_fs.disk().stats();
    tb.spawn_utilization_sampler();
    let p = tb.proc();
    let cfg2 = cfg.clone();
    let h = tb
        .sim
        .spawn(async move { bench.run(&p, &cfg2).await.expect("benchmark run") });
    let times = tb.sim.run_until(h);
    let ops = tb.counter.snapshot() - ops_before;
    let disk_after = tb.server_fs.disk().stats();
    // Drain the write-back tail for the figures.
    {
        let sim = tb.sim.clone();
        let h = tb
            .sim
            .spawn(async move { sim.sleep(SimDuration::from_secs(120)).await });
        tb.sim.run_until(h);
    }
    let ops_with_tail = tb.counter.snapshot() - ops_before;
    AndrewRun {
        protocol,
        tmp_remote,
        times,
        ops,
        ops_with_tail,
        server_disk: DiskStats {
            reads: disk_after.reads - disk_before.reads,
            writes: disk_after.writes - disk_before.writes,
            bytes_read: disk_after.bytes_read - disk_before.bytes_read,
            bytes_written: disk_after.bytes_written - disk_before.bytes_written,
        },
        rate_buckets: {
            // The rate series is indexed from t = 0; align it with the
            // utilization samples, which start at the benchmark.
            let skip =
                (bench_start.as_micros() / crate::config::figure_bucket().as_micros()) as usize;
            let buckets = tb.rates.buckets();
            buckets.get(skip..).map(<[_]>::to_vec).unwrap_or_default()
        },
        util_samples: tb.util.samples(),
        latency: tb.latency.clone(),
        stats: tb.stats_snapshot(),
        trace: tb.finish_trace(),
        server_digest: crate::chaosx::server_digest(&tb.server_fs),
    }
}
