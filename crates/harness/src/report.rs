//! Paper-style table and figure rendering.

use spritely_metrics::TextTable;
use spritely_proto::NfsProc;

use crate::andrew::AndrewRun;
use crate::flushx::FlushRun;
use crate::microx::ReopenRun;
use crate::sortx::SortRun;

fn secs(d: spritely_sim::SimDuration) -> String {
    format!("{:.0}", d.as_secs_f64())
}

/// Selector from a run to one phase's elapsed time.
type PhaseSelector = fn(&AndrewRun) -> spritely_sim::SimDuration;

/// Table 5-1: Andrew benchmark elapsed times, one column per run.
pub fn table_5_1(runs: &[AndrewRun]) -> String {
    let mut headers = vec!["Phase".to_string()];
    headers.extend(runs.iter().map(|r| r.label()));
    let mut t = TextTable::new(headers);
    let phases: [(&str, PhaseSelector); 5] = [
        ("MakeDir", |r| r.times.makedir),
        ("Copy", |r| r.times.copy),
        ("ScanDir", |r| r.times.scandir),
        ("ReadAll", |r| r.times.readall),
        ("Make", |r| r.times.make),
    ];
    for (name, f) in phases {
        let mut row = vec![name.to_string()];
        row.extend(runs.iter().map(|r| secs(f(r))));
        t.row(row);
    }
    let mut row = vec!["Total".to_string()];
    row.extend(runs.iter().map(|r| secs(r.times.total())));
    t.row(row);
    t.render()
}

/// Table 5-2: per-procedure RPC counts for the Andrew benchmark.
///
/// Uses the steady-state counts (benchmark plus its delayed write-back
/// tail): the paper ran SNFS trials back to back, so each measurement
/// window absorbed the previous trial's postponed writes (§5.2).
pub fn table_5_2(runs: &[AndrewRun]) -> String {
    let mut headers = vec!["RPC".to_string()];
    headers.extend(runs.iter().map(|r| r.label()));
    let mut t = TextTable::new(headers);
    for p in NfsProc::ALL {
        if runs.iter().all(|r| r.ops_with_tail.get(p) == 0) {
            continue;
        }
        let mut row = vec![p.name().to_string()];
        row.extend(runs.iter().map(|r| r.ops_with_tail.get(p).to_string()));
        t.row(row);
    }
    let mut row = vec!["total".to_string()];
    row.extend(runs.iter().map(|r| r.ops_with_tail.total().to_string()));
    t.row(row);
    let mut row = vec!["data xfer".to_string()];
    row.extend(
        runs.iter()
            .map(|r| r.ops_with_tail.data_transfers().to_string()),
    );
    t.row(row);
    let mut row = vec!["disk writes".to_string()];
    row.extend(runs.iter().map(|r| r.server_disk.writes.to_string()));
    t.row(row);
    t.render()
}

/// Figures 5-1 / 5-2: server utilization and call rates over time, as a
/// CSV-ish text block (`t_sec, util, calls/s, reads/s, writes/s`).
pub fn figure_series(run: &AndrewRun) -> String {
    let width = crate::config::figure_bucket().as_secs_f64();
    let mut out = String::from("t_sec,cpu_util,calls_per_s,reads_per_s,writes_per_s\n");
    let mut n = run.rate_buckets.len().max(run.util_samples.len());
    // Trim the quiet tail (post-benchmark drain with no activity).
    while n > 1 {
        let i = n - 1;
        let quiet_rate = run.rate_buckets.get(i).is_none_or(|b| b.total == 0);
        let quiet_util = run.util_samples.get(i).is_none_or(|&(_, u)| u < 0.005);
        if quiet_rate && quiet_util {
            n -= 1;
        } else {
            break;
        }
    }
    for i in 0..n {
        let t = (i as f64 + 1.0) * width;
        let (total, reads, writes) = run
            .rate_buckets
            .get(i)
            .map(|b| {
                (
                    b.total as f64 / width,
                    b.reads as f64 / width,
                    b.writes as f64 / width,
                )
            })
            .unwrap_or((0.0, 0.0, 0.0));
        let util = run.util_samples.get(i).map(|&(_, u)| u).unwrap_or(0.0);
        out.push_str(&format!(
            "{t:.0},{util:.3},{total:.1},{reads:.1},{writes:.1}\n"
        ));
    }
    out
}

/// Table 5-3 / 5-5: sort elapsed times; rows are input sizes, columns are
/// `/usr/tmp` placements.
pub fn sort_table(runs: &[SortRun]) -> String {
    let mut sizes: Vec<u64> = runs.iter().map(|r| r.input_bytes).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut protos: Vec<crate::Protocol> = Vec::new();
    for r in runs {
        if !protos.contains(&r.protocol) {
            protos.push(r.protocol);
        }
    }
    let mut headers = vec!["Input".to_string()];
    headers.extend(protos.iter().map(|p| format!("{} /usr/tmp", p.label())));
    let mut t = TextTable::new(headers);
    for size in sizes {
        let mut row = vec![format!("{} k", size / 1024)];
        for proto in &protos {
            let cell = runs
                .iter()
                .find(|r| r.input_bytes == size && r.protocol == *proto)
                .map(|r| format!("{} sec", secs(r.elapsed)))
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        t.row(row);
    }
    t.render()
}

/// Table 5-4 / 5-6: RPC calls for the sort benchmark.
pub fn sort_rpc_table(runs: &[SortRun]) -> String {
    let mut headers = vec!["Version".to_string()];
    headers.extend(["update?", "reads", "writes", "others", "total"].map(String::from));
    let mut t = TextTable::new(headers);
    for r in runs {
        t.row(vec![
            r.protocol.label().to_string(),
            if r.update_enabled { "yes" } else { "no" }.to_string(),
            r.ops.get(NfsProc::Read).to_string(),
            r.ops.get(NfsProc::Write).to_string(),
            (r.ops.total() - r.ops.get(NfsProc::Read) - r.ops.get(NfsProc::Write)).to_string(),
            r.ops.total().to_string(),
        ]);
    }
    t.render()
}

/// Latency table: per-procedure count / mean / p50 / p95 / p99 / max.
pub fn latency_table(l: &spritely_metrics::LatencyStats) -> String {
    let mut t = TextTable::new(vec!["RPC", "count", "mean", "p50", "p95", "p99", "max"]);
    for p in l.observed() {
        t.row(vec![
            p.name().to_string(),
            l.count(p).to_string(),
            format!("{:.1} ms", l.mean(p).as_secs_f64() * 1e3),
            format!("{:.1} ms", l.percentile(p, 0.50).as_secs_f64() * 1e3),
            format!("{:.1} ms", l.percentile(p, 0.95).as_secs_f64() * 1e3),
            format!("{:.1} ms", l.percentile(p, 0.99).as_secs_f64() * 1e3),
            format!("{:.1} ms", l.max(p).as_secs_f64() * 1e3),
        ]);
    }
    t.render()
}

/// Write-behind flush microbenchmark report: one row per pool
/// configuration, including the write-back failure count (normally 0)
/// and the `write` RPC latency distribution.
pub fn flush_table(runs: &[FlushRun]) -> String {
    let mut t = TextTable::new(vec![
        "Mode",
        "blocks",
        "flush ms",
        "write RPCs",
        "blk/RPC",
        "inflight",
        "failures",
        "w p50 ms",
        "w p95 ms",
        "w p99 ms",
    ]);
    for r in runs {
        let pct = |q| {
            format!(
                "{:.1}",
                r.latency.percentile(NfsProc::Write, q).as_secs_f64() * 1e3
            )
        };
        t.row(vec![
            r.label.to_string(),
            r.dirty_blocks.to_string(),
            format!("{:.1}", r.flush_time.as_secs_f64() * 1e3),
            r.write_rpcs.to_string(),
            format!("{:.1}", r.mean_batch),
            r.peak_inflight.to_string(),
            r.writeback_failures.to_string(),
            pct(0.50),
            pct(0.95),
            pct(0.99),
        ]);
    }
    t.render()
}

/// §5.3 microbenchmark report.
pub fn reopen_table(runs: &[ReopenRun]) -> String {
    let mut t = TextTable::new(vec!["Protocol", "reread", "write s", "read s", "read RPCs"]);
    for r in runs {
        t.row(vec![
            r.protocol.label().to_string(),
            if r.same_file { "same" } else { "other" }.to_string(),
            format!("{:.2}", r.result.write_time.as_secs_f64()),
            format!("{:.2}", r.result.read_time.as_secs_f64()),
            r.ops.get(NfsProc::Read).to_string(),
        ]);
    }
    t.render()
}

/// Server I/O pipeline observability (DESIGN.md §12): per scaling run,
/// the server block-cache hit rate and the disk-queue shape — peak
/// depth, mean queue wait and mean arm positioning time per request.
pub fn server_io_table(runs: &[(&str, &crate::ScalingRun)]) -> String {
    let mut t = TextTable::new(vec![
        "Config",
        "clients",
        "makespan s",
        "cache hit%",
        "disk q peak",
        "wait ms",
        "pos ms",
        "rpc p50 ms",
        "rpc p95 ms",
        "rpc p99 ms",
    ]);
    for (label, r) in runs {
        let (h, m) = r.server_cache;
        let hit = if h + m > 0 {
            100.0 * h as f64 / (h + m) as f64
        } else {
            0.0
        };
        let pct = |q| format!("{:.1}", r.latency.total_percentile(q).as_secs_f64() * 1e3);
        t.row(vec![
            label.to_string(),
            r.clients.to_string(),
            secs(r.makespan),
            format!("{hit:.1}"),
            r.disk_queue_peak.to_string(),
            format!("{:.1}", r.disk_wait_ms_mean),
            format!("{:.1}", r.disk_pos_ms_mean),
            pct(0.50),
            pct(0.95),
            pct(0.99),
        ]);
    }
    t.render()
}

/// Transport-pipeline comparison: wire traffic and batching effect per
/// configuration, followed by the round trips saved per procedure
/// (procedures with no savings in any configuration are skipped).
///
/// Each row is `(label, end-of-run transport snapshot)` — see
/// [`crate::TransportSnapshot`].
pub fn transport_table(rows: &[(&str, &crate::TransportSnapshot)]) -> String {
    let mut t = TextTable::new(vec![
        "Config",
        "msgs",
        "kbytes",
        "busy ms",
        "batches",
        "mean batch",
        "saved RTs",
        "attr elides",
    ]);
    for (label, tr) in rows {
        let mean = if tr.batches > 0 {
            tr.batched_calls as f64 / tr.batches as f64
        } else {
            0.0
        };
        t.row(vec![
            label.to_string(),
            tr.net_messages.to_string(),
            (tr.net_bytes / 1024).to_string(),
            tr.wire_busy_ms.to_string(),
            tr.batches.to_string(),
            format!("{mean:.1}"),
            tr.saved_round_trips.to_string(),
            tr.attr_elisions.to_string(),
        ]);
    }
    let mut out = t.render();
    let procs: Vec<NfsProc> = NfsProc::ALL
        .into_iter()
        .filter(|&p| rows.iter().any(|(_, tr)| tr.saved_per_proc.get(p) > 0))
        .collect();
    if !procs.is_empty() {
        let mut headers = vec!["Saved/proc".to_string()];
        headers.extend(rows.iter().map(|(l, _)| l.to_string()));
        let mut t2 = TextTable::new(headers);
        for p in procs {
            let mut row = vec![p.name().to_string()];
            row.extend(
                rows.iter()
                    .map(|(_, tr)| tr.saved_per_proc.get(p).to_string()),
            );
            t2.row(row);
        }
        out.push('\n');
        out.push_str(&t2.render());
    }
    out
}

/// Delegation-subsystem comparison (DESIGN.md §17): per configuration,
/// the grant/recall/return/revoke accounting, the RPC-free fast-path
/// counters, and the recall round-trip latency histogram (bucket
/// upper bounds 1 ms / 10 ms / 100 ms / 1 s / ∞ of virtual time).
///
/// Each row is `(label, end-of-run delegation snapshot)` — see
/// [`crate::DelegationSnapshot`].
pub fn delegation_table(rows: &[(&str, &crate::DelegationSnapshot)]) -> String {
    let mut t = TextTable::new(vec![
        "Config",
        "grants r/w",
        "local opens",
        "local closes",
        "recalls",
        "returns",
        "revokes",
        "held",
        "recall <1ms/<10ms/<100ms/<1s/1s+",
    ]);
    for (label, d) in rows {
        let s = &d.stats;
        let b = s.recall_latency.buckets;
        t.row(vec![
            label.to_string(),
            format!("{}/{}", s.grants_read, s.grants_write),
            s.local_opens.to_string(),
            s.local_closes.to_string(),
            s.recalls.to_string(),
            s.returns.to_string(),
            s.revokes.to_string(),
            d.held.to_string(),
            format!("{}/{}/{}/{}/{}", b[0], b[1], b[2], b[3], b[4]),
        ]);
    }
    t.render()
}

/// Executor-counter comparison: what the discrete-event scheduler did
/// during each run — events retired, polls, timer traffic, and the
/// slab/heap/queue high-water marks that proxy memory footprint.
///
/// Each row is `(label, end-of-run sim snapshot)` — see
/// [`crate::SimSnapshot`].
pub fn sim_table(rows: &[(&str, &crate::SimSnapshot)]) -> String {
    let mut t = TextTable::new(vec![
        "Config",
        "events",
        "polls",
        "tasks",
        "stale wakes",
        "timers",
        "fires",
        "cancels",
        "peak ready",
        "peak tasks",
        "peak timers",
    ]);
    for (label, s) in rows {
        t.row(vec![
            label.to_string(),
            s.events_retired.to_string(),
            s.polls.to_string(),
            s.tasks_spawned.to_string(),
            s.stale_wakes.to_string(),
            s.timers_registered.to_string(),
            s.timer_fires.to_string(),
            s.timer_cancels.to_string(),
            s.peak_ready_depth.to_string(),
            s.peak_live_tasks.to_string(),
            s.peak_live_timers.to_string(),
        ]);
    }
    t.render()
}

/// Renders the chaos harness's fault accounting: every injected fault
/// and where it was absorbed (retransmission or duplicate cache). The
/// final column is the conservation residue `killed − absorbed −
/// outstanding`, zero on any complete run.
pub fn fault_table(rows: &[(&str, &crate::FaultSnapshot)]) -> String {
    let mut t = TextTable::new(vec![
        "Config",
        "drops",
        "dups",
        "delays",
        "reply loss",
        "partition",
        "killed",
        "retx absorbed",
        "outstanding",
        "dup-cache hits",
        "dup joins",
        "cb retries",
        "cb dupes",
    ]);
    for (label, f) in rows {
        t.row(vec![
            label.to_string(),
            f.drops.to_string(),
            f.dups.to_string(),
            f.delays.to_string(),
            f.reply_losses.to_string(),
            f.partition_drops.to_string(),
            f.killed_attempts.to_string(),
            f.retransmit_absorbed.to_string(),
            f.outstanding_kills.to_string(),
            f.dup_cache_hits.to_string(),
            f.dup_cache_joins.to_string(),
            f.callback_retries.to_string(),
            f.callback_dupes.to_string(),
        ]);
    }
    t.render()
}

/// "Where does the time go" report for a profiled trace (DESIGN.md §16):
/// the run-wide phase breakdown, then the per-op-kind breakdown (count,
/// mean latency, dominant phases), then per-procedure RPC latency
/// percentiles reconstructed from the trace.
pub fn profile_table(p: &spritely_trace::Profile) -> String {
    use spritely_trace::Phase;
    let mut out = String::new();
    out.push_str(&format!(
        "profile: {} spans, {} RPCs (op {}, callback {}, background {}, incomplete {}), {:.2}% attributed\n",
        p.ops.len(),
        p.total_rpcs,
        p.claims.op,
        p.claims.callback,
        p.claims.background,
        p.claims.incomplete,
        p.attributed_fraction() * 100.0,
    ));
    let mut t = TextTable::new(vec!["Phase", "total s", "% of op time"]);
    for ph in Phase::ALL {
        let us = p.phase_total(ph);
        if us == 0 {
            continue;
        }
        t.row(vec![
            ph.name().to_string(),
            format!("{:.3}", us as f64 / 1e6),
            format!("{:.1}", 100.0 * us as f64 / p.total_us.max(1) as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    let mut t = TextTable::new(vec![
        "Op", "count", "mean ms", "local%", "queue%", "net%", "admit%", "dup%", "cpu%", "diskq%",
        "disk%", "cb%",
    ]);
    for k in &p.op_kinds {
        let pct = |ph: Phase| {
            let i = Phase::ALL.iter().position(|&q| q == ph).unwrap();
            format!(
                "{:.1}",
                100.0 * k.phase_us[i] as f64 / k.total_us.max(1) as f64
            )
        };
        t.row(vec![
            k.op.to_string(),
            k.count.to_string(),
            format!("{:.2}", k.total_us as f64 / k.count.max(1) as f64 / 1e3),
            pct(Phase::CacheLocal),
            pct(Phase::ClientQueue),
            pct(Phase::Net),
            pct(Phase::Admission),
            pct(Phase::DupCache),
            pct(Phase::ServerCpu),
            pct(Phase::DiskQueue),
            pct(Phase::DiskService),
            pct(Phase::Callback),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&latency_table(&p.rpc_latency));
    out
}

/// Human-readable summary of a checked trace: per-kind event counts
/// followed by every invariant violation (normally none).
pub fn trace_summary(report: &crate::snapshot::TraceReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("trace: {} events\n", report.events.len()));
    for (name, count) in spritely_trace::check::kind_counts(&report.events) {
        out.push_str(&format!("  {name:<14} {count}\n"));
    }
    if report.violations.is_empty() {
        out.push_str("checker: OK (0 violations)\n");
    } else {
        out.push_str(&format!(
            "checker: {} VIOLATION(S)\n",
            report.violations.len()
        ));
        for v in &report.violations {
            out.push_str(&format!("  {v}\n"));
        }
    }
    out
}

/// Per-shard serving breakdown for a sharded run (DESIGN.md §18): RPCs
/// served, duplicate-cache hits, state-table residency, cross-shard
/// coordination traffic and the contention counters, one row per shard
/// plus an aggregate footer.
pub fn shard_table(s: &crate::ShardsSnapshot) -> String {
    let mut t = TextTable::new(vec![
        "Shard",
        "RPCs",
        "dup hits",
        "table",
        "x-renames",
        "x-links",
        "redirects",
        "busy",
        "lock cont.",
        "dup cont.",
    ]);
    for sh in &s.shards {
        t.row(vec![
            sh.shard.to_string(),
            sh.rpcs.to_string(),
            sh.dup_hits.to_string(),
            sh.table_entries.to_string(),
            sh.cross_renames.to_string(),
            sh.cross_links.to_string(),
            sh.wrong_shard_replies.to_string(),
            sh.busy_rejections.to_string(),
            sh.lock_contention.to_string(),
            sh.dup_contention.to_string(),
        ]);
    }
    let sum = |f: fn(&crate::ShardSnapshot) -> u64| s.shards.iter().map(f).sum::<u64>();
    t.row(vec![
        "total".to_string(),
        sum(|x| x.rpcs).to_string(),
        sum(|x| x.dup_hits).to_string(),
        sum(|x| x.table_entries).to_string(),
        sum(|x| x.cross_renames).to_string(),
        sum(|x| x.cross_links).to_string(),
        sum(|x| x.wrong_shard_replies).to_string(),
        sum(|x| x.busy_rejections).to_string(),
        sum(|x| x.lock_contention).to_string(),
        sum(|x| x.dup_contention).to_string(),
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "peak client cache: {} KiB (lazily allocated; idle clients hold none)\n",
        s.peak_client_kb
    ));
    out
}
