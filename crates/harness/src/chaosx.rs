//! Chaos harness: paper workloads under a seeded network-fault schedule.
//!
//! The protocols in the paper were built for a mostly-reliable Ethernet;
//! the interesting bugs only show up when the transport misbehaves. This
//! module runs the Andrew benchmark and a two-client write-sharing
//! workload with the [`FaultParams::chaos`] schedule (random drops,
//! duplicates, delays, reply losses) plus a scripted partition/heal
//! cycle, then checks that the system *converged*:
//!
//! * the run terminated (every workload op eventually succeeded),
//! * the causal trace checker found no invariant violations,
//! * the server's stable file contents are byte-identical to a
//!   fault-free run of the same seed, and
//! * every injected fault is accounted for in [`FaultSnapshot`]
//!   (`killed_attempts == retransmit_absorbed + outstanding_kills`).

use spritely_localfs::LocalFs;
use spritely_proto::{default_shard, FileHandle, FileType};
use spritely_rpcnet::{FaultParams, PartitionDir};
use spritely_sim::SimDuration;

use crate::snapshot::FaultSnapshot;
use crate::testbed::{Protocol, RemoteClient, ShardParams, Testbed, TestbedParams};
use crate::{report, run_andrew_with};

/// Outcome of one chaos run, with everything a gate needs to decide
/// pass/fail and everything a human needs to see why.
#[derive(Debug, Clone)]
pub struct ChaosVerdict {
    /// Which workload ran.
    pub workload: &'static str,
    /// Digest of the fault-free run's server stable contents.
    pub digest_clean: u64,
    /// Digest of the faulted run's server stable contents.
    pub digest_faulted: u64,
    /// Trace-checker violations in the faulted run.
    pub trace_violations: usize,
    /// Fault accounting of the faulted run.
    pub faults: FaultSnapshot,
}

impl ChaosVerdict {
    /// Total faults the schedule injected (the run is only interesting
    /// if this is non-zero).
    pub fn injected(&self) -> u64 {
        let f = &self.faults;
        f.drops + f.dups + f.delays + f.reply_losses + f.partition_drops
    }

    /// True when the faulted run converged to the fault-free outcome
    /// and the fault accounting balances.
    pub fn converged(&self) -> bool {
        let f = &self.faults;
        self.digest_clean == self.digest_faulted
            && self.trace_violations == 0
            && f.killed_attempts == f.retransmit_absorbed + f.outstanding_kills
    }

    /// Human-readable summary (includes the fault table).
    pub fn report(&self) -> String {
        format!(
            "chaos[{}]: injected={} digest {}: clean={:016x} faulted={:016x} \
             trace_violations={}\n{}",
            self.workload,
            self.injected(),
            if self.digest_clean == self.digest_faulted {
                "MATCH"
            } else {
                "MISMATCH"
            },
            self.digest_clean,
            self.digest_faulted,
            self.trace_violations,
            report::fault_table(&[(self.workload, &self.faults)]),
        )
    }
}

/// Digest of a whole testbed's stable server contents: the one server's
/// in the paper configuration, or every shard's store folded together in
/// shard order for a sharded namespace (DESIGN.md §18).
pub fn testbed_digest(tb: &Testbed) -> u64 {
    if tb.shard_hosts.is_empty() {
        server_digest(&tb.server_fs)
    } else {
        let mut h = Fnv::new();
        for sh in &tb.shard_hosts {
            h.write(&server_digest(&sh.fs).to_le_bytes());
        }
        h.0
    }
}

/// Path-ordered FNV-1a digest of a file system's *stable* contents
/// (what survives a crash): every path, object type, link target and
/// file body, in sorted traversal order. Timestamps are excluded — a
/// faulted run takes longer but must converge to the same bytes.
pub fn server_digest(fs: &LocalFs) -> u64 {
    let mut h = Fnv::new();
    walk(fs, fs.root(), "", &mut h);
    h.0
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn walk(fs: &LocalFs, dir: FileHandle, path: &str, h: &mut Fnv) {
    let mut entries = fs.readdir(dir).expect("readdir in digest walk");
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    for e in entries {
        let (fh, attr) = fs.lookup(dir, &e.name).expect("lookup in digest walk");
        let p = format!("{path}/{}", e.name);
        h.write(p.as_bytes());
        match attr.ftype {
            FileType::Directory => {
                h.write(b"\0d");
                walk(fs, fh, &p, h);
            }
            FileType::Regular => {
                h.write(b"\0f");
                h.write(&fs.stable_contents(fh).expect("contents in digest walk"));
            }
            FileType::Symlink => {
                h.write(b"\0l");
                h.write(fs.readlink(fh).expect("readlink in digest walk").as_bytes());
            }
        }
    }
}

/// Runs the Andrew benchmark twice with the same seed — once fault-free,
/// once under [`FaultParams::chaos`] — and compares outcomes.
pub fn chaos_andrew(seed: u64) -> ChaosVerdict {
    let clean = run_andrew_with(
        TestbedParams {
            protocol: Protocol::Snfs,
            ..TestbedParams::default()
        },
        seed,
    );
    let faulted = run_andrew_with(
        TestbedParams {
            protocol: Protocol::Snfs,
            trace: true,
            faults: FaultParams::chaos(seed),
            ..TestbedParams::default()
        },
        seed,
    );
    ChaosVerdict {
        workload: "andrew",
        digest_clean: clean.server_digest,
        digest_faulted: faulted.server_digest,
        trace_violations: faulted.trace.as_ref().map_or(0, |t| t.violations.len()),
        faults: faulted.stats.faults.expect("faulted run has fault stats"),
    }
}

/// Two-client write-sharing under chaos plus one partition/heal cycle.
///
/// Client B writes the shared file and holds the data dirty (30 s write
/// delay), then B's host is partitioned. Client A opens the file while B
/// is unreachable: the server must *retry* B's write-back callback past
/// the partition instead of declaring B crashed — when the partition
/// heals, B's dirty data reaches the server and A reads it. This is the
/// end-to-end version of the callback-retry bugfix regression.
pub fn chaos_write_sharing(seed: u64) -> ChaosVerdict {
    let clean = run_write_sharing(seed, false);
    let faulted = run_write_sharing(seed, true);
    ChaosVerdict {
        workload: "write-sharing",
        digest_clean: clean.digest,
        digest_faulted: faulted.digest,
        trace_violations: faulted.violations,
        faults: faulted.faults.expect("faulted run has fault stats"),
    }
}

/// Recall-heavy two-client workload under chaos (DESIGN.md §17.2).
///
/// Client A creates a working set of files — earning write delegations
/// — flushes them, and churns them locally; client B then sweeps every
/// file for read, forcing a recall per file over the lossy wire. In the
/// faulted run A's host is additionally partitioned outbound for 7 s at
/// the start of B's first sweep, so recall acks and delegation returns
/// are lost and the server's recall retry loop re-delivers (duplicated
/// recalls hit the client's sequence guard; a holder that cannot return
/// in time is revoked and fenced). After the heal A rewrites one file
/// and B re-reads it, exercising the re-grant path. Convergence means
/// the faulted run still reaches the fault-free server bytes with zero
/// delegation-invariant violations.
pub fn chaos_delegation(seed: u64) -> ChaosVerdict {
    let clean = run_delegation(seed, false);
    let faulted = run_delegation(seed, true);
    assert!(
        faulted.gate_ops >= 1,
        "the sweep must force at least one recall"
    );
    ChaosVerdict {
        workload: "delegation",
        digest_clean: clean.digest,
        digest_faulted: faulted.digest,
        trace_violations: faulted.violations,
        faults: faulted.faults.expect("faulted run has fault stats"),
    }
}

/// Cross-shard renames under chaos with a shard partitioned mid-rename
/// (DESIGN.md §18.4).
///
/// Two clients work disjoint name sets over a 4-shard namespace. Client
/// 0's first rename is chosen to cross shards; just before issuing it,
/// the coordinating shard's inter-shard link (fault host `200 + s`) is
/// partitioned for 8 s, so the `tx_prepare` to the destination's owner
/// cannot leave the coordinator. The coordinator must hold the name
/// locked and retry the prepare past the heal — Busy-bouncing concurrent
/// touches of either name, absorbing the client's re-issued rename via
/// the duplicate-request cache — and then drive the commit to
/// completion. Convergence means both runs (fault-free and faulted)
/// reach byte-identical stable state across every shard, with zero
/// trace violations including rule 10's atomicity window.
pub fn chaos_shard(seed: u64) -> ChaosVerdict {
    let clean = run_shard_chaos(seed, false);
    let faulted = run_shard_chaos(seed, true);
    assert!(
        faulted.gate_ops >= 1,
        "the workload must coordinate at least one cross-shard rename"
    );
    ChaosVerdict {
        workload: "shard",
        digest_clean: clean.digest,
        digest_faulted: faulted.digest,
        trace_violations: faulted.violations,
        faults: faulted.faults.expect("faulted run has fault stats"),
    }
}

fn run_shard_chaos(seed: u64, faulted: bool) -> SharingRun {
    const N_SHARDS: u32 = 4;
    const FILES: u32 = 3;
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            shards: ShardParams::sharded(N_SHARDS as usize),
            trace: faulted,
            faults: if faulted {
                FaultParams::chaos(seed)
            } else {
                FaultParams::default()
            },
            ..TestbedParams::default()
        },
        2,
    );
    let sim = tb.sim.clone();
    let net = tb.net.clone();
    let root = tb.server_fs.root();
    // First name of the form `{prefix}{i}` owned by `shard`.
    let name_on = |shard: u32, prefix: &str| -> String {
        (0u32..)
            .map(|i| format!("{prefix}{i}"))
            .find(|s| default_shard(s, N_SHARDS) == shard)
            .expect("some index hashes to every shard")
    };
    let mut handles = Vec::new();
    for c in 0..2u32 {
        let client = match &tb.clients[c as usize].remote {
            RemoteClient::Snfs(cl) => cl.clone(),
            _ => unreachable!("SNFS testbed"),
        };
        // Disjoint per-client names; every rename crosses shards so the
        // digests converge regardless of client interleaving.
        let pairs: Vec<(String, String)> = (0..FILES)
            .map(|i| {
                let src = format!("c{c}w{i}");
                let s = default_shard(&src, N_SHARDS);
                let dst = name_on((s + 1) % N_SHARDS, &format!("c{c}m{i}_"));
                (src, dst)
            })
            .collect();
        // Client 0's first rename coordinates from this shard; its
        // inter-shard link is what the partition severs.
        let coord = default_shard(&pairs[0].0, N_SHARDS);
        let sim = sim.clone();
        let net = net.clone();
        handles.push(tb.sim.spawn(async move {
            use spritely_proto::BLOCK_SIZE;
            macro_rules! insist {
                ($e:expr) => {{
                    loop {
                        match $e.await {
                            Ok(v) => break v,
                            Err(_) => sim.sleep(SimDuration::from_millis(500)).await,
                        }
                    }
                }};
            }
            let mut fhs = Vec::new();
            for (i, (src, _)) in pairs.iter().enumerate() {
                let (fh, _) = insist!(client.create(root, src));
                insist!(client.open(fh, true));
                insist!(client.write(fh, 0, &[(c as u8) * 16 + i as u8 + 1; BLOCK_SIZE]));
                insist!(client.fsync(fh));
                insist!(client.close(fh, true));
                fhs.push(fh);
            }
            // Sever the coordinator's inter-shard link just before the
            // cross-shard renames (scripted; consumes no randomness).
            if c == 0 && net.faults_active() {
                net.partition(
                    200 + coord,
                    PartitionDir::Both,
                    sim.now() + SimDuration::from_secs(8),
                );
            }
            for (src, dst) in &pairs {
                // A rename is not idempotent across calls: a re-issued
                // rename whose first call executed (held through the
                // partition by the coordinator) sees NoEnt. Confirm the
                // outcome by resolving the destination.
                loop {
                    match client.rename(root, src, root, dst).await {
                        Ok(()) => break,
                        Err(_) => {
                            if client.lookup(root, dst).await.is_ok() {
                                break;
                            }
                            sim.sleep(SimDuration::from_millis(500)).await;
                        }
                    }
                }
            }
            // A cross-shard hard link on top of the moved set.
            let ln = name_on(
                (default_shard(&pairs[0].1, N_SHARDS) + 1) % N_SHARDS,
                &format!("c{c}ln_"),
            );
            loop {
                match client.link(fhs[0], root, &ln).await {
                    Ok(_) => break,
                    Err(spritely_proto::NfsStatus::Exist) => break,
                    Err(_) => sim.sleep(SimDuration::from_millis(500)).await,
                }
            }
            // Read everything back through the new names.
            for (i, (_, dst)) in pairs.iter().enumerate() {
                let (fh, _) = insist!(client.lookup(root, dst));
                insist!(client.open(fh, false));
                let (data, _) = insist!(client.read(fh, 0, BLOCK_SIZE as u32));
                assert!(
                    data.iter().all(|&x| x == (c as u8) * 16 + i as u8 + 1),
                    "client {c} reads its own bytes via {dst}"
                );
                insist!(client.close(fh, false));
            }
            // Let delayed writes, commits and keepalives drain.
            sim.sleep(SimDuration::from_secs(70)).await;
        }));
    }
    for h in handles {
        tb.sim.run_until(h);
    }
    let snap = tb.stats_snapshot();
    let cross_ops = snap.shards.as_ref().map_or(0, |sh| {
        sh.shards
            .iter()
            .map(|s| s.cross_renames + s.cross_links)
            .sum()
    });
    let violations = tb.finish_trace().map_or(0, |t| t.violations.len());
    SharingRun {
        digest: testbed_digest(&tb),
        violations,
        faults: snap.faults,
        gate_ops: cross_ops,
    }
}

fn run_delegation(seed: u64, faulted: bool) -> SharingRun {
    use spritely_core::DelegationParams;
    const FILES: u64 = 4;
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            delegation: DelegationParams::pipelined(),
            trace: faulted,
            faults: if faulted {
                FaultParams::chaos(seed)
            } else {
                FaultParams::default()
            },
            ..TestbedParams::default()
        },
        2,
    );
    let a = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => unreachable!("SNFS testbed"),
    };
    let b = match &tb.clients[1].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => unreachable!("SNFS testbed"),
    };
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let net = tb.net.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            use spritely_proto::BLOCK_SIZE;
            // Hard-mount retry, as in the write-sharing workload: under
            // chaos an RPC ladder can exhaust, and during the partition
            // (or a recall that ends in a revoke) calls must fail for a
            // while before succeeding.
            macro_rules! insist {
                ($e:expr) => {{
                    loop {
                        match $e.await {
                            Ok(v) => break v,
                            Err(_) => sim.sleep(SimDuration::from_millis(500)).await,
                        }
                    }
                }};
            }
            // A builds its delegated working set. Everything is fsynced:
            // the interesting chaos target is the recall protocol, not
            // dirty-data recovery, and a revoked holder's unflushed
            // writes are legitimately fenced away (§17.3) — which would
            // make the digests diverge by design.
            let mut fhs = Vec::new();
            for i in 0..FILES {
                let (fh, _) = insist!(a.create(root, &format!("deleg{i}")));
                insist!(a.open(fh, true));
                insist!(a.write(fh, 0, &[i as u8 + 1; BLOCK_SIZE]));
                insist!(a.fsync(fh));
                insist!(a.close(fh, true));
                fhs.push(fh);
            }
            // Local churn: re-open/read/close under the delegations.
            for _ in 0..3 {
                for &fh in &fhs {
                    insist!(a.open(fh, false));
                    let _ = insist!(a.read(fh, 0, BLOCK_SIZE as u32));
                    insist!(a.close(fh, false));
                }
            }
            // A goes mute for 7 s just as B's sweep starts: recall
            // callbacks still reach A, but its acks and returns are
            // lost until the heal (scripted, consumes no randomness).
            if net.faults_active() {
                net.partition(
                    1,
                    PartitionDir::Outbound,
                    sim.now() + SimDuration::from_secs(7),
                );
            }
            // B sweeps the working set: one recall per file.
            for &fh in &fhs {
                insist!(b.open(fh, false));
                let _ = insist!(b.read(fh, 0, BLOCK_SIZE as u32));
                insist!(b.close(fh, false));
            }
            // After the heal: A rewrites one file (re-earning authority
            // or falling back to RPC if it was fenced), B re-reads it.
            let fh = fhs[0];
            insist!(a.open(fh, true));
            insist!(a.write(fh, 0, &[0xAA; BLOCK_SIZE]));
            insist!(a.fsync(fh));
            insist!(a.close(fh, true));
            insist!(b.open(fh, false));
            let (data, _) = insist!(b.read(fh, 0, BLOCK_SIZE as u32));
            assert!(
                data.iter().all(|&x| x == 0xAA),
                "B sees A's post-heal version"
            );
            insist!(b.close(fh, false));
            // Let delayed writes, lazy returns and keepalives drain.
            sim.sleep(SimDuration::from_secs(70)).await;
        }
    });
    sim.run_until(h);
    let recalls = tb
        .snfs_server
        .as_ref()
        .map_or(0, |s| s.delegation_stats().recalls);
    let snap = tb.stats_snapshot();
    let violations = tb.finish_trace().map_or(0, |t| t.violations.len());
    SharingRun {
        digest: server_digest(&tb.server_fs),
        violations,
        faults: snap.faults,
        gate_ops: recalls,
    }
}

struct SharingRun {
    digest: u64,
    violations: usize,
    faults: Option<FaultSnapshot>,
    /// Workload-specific interestingness counter the caller gates on:
    /// delegation recalls for the delegation workload, coordinated
    /// cross-shard ops for the shard workload, 0 elsewhere.
    gate_ops: u64,
}

fn run_write_sharing(seed: u64, faulted: bool) -> SharingRun {
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            // Keep B's data dirty long enough for the partition to matter.
            snfs_write_delay: SimDuration::from_secs(30),
            trace: faulted,
            faults: if faulted {
                FaultParams::chaos(seed)
            } else {
                FaultParams::default()
            },
            ..TestbedParams::default()
        },
        2,
    );
    let a = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => unreachable!("SNFS testbed"),
    };
    let b = match &tb.clients[1].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => unreachable!("SNFS testbed"),
    };
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let net = tb.net.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            use spritely_proto::BLOCK_SIZE;
            // Every op retries until it succeeds, as a hard-mounted 1989
            // client would: under chaos an RPC ladder can exhaust, and
            // during the partition B's (and some of A's) calls must fail.
            macro_rules! insist {
                ($e:expr) => {{
                    loop {
                        match $e.await {
                            Ok(v) => break v,
                            Err(_) => sim.sleep(SimDuration::from_millis(500)).await,
                        }
                    }
                }};
            }
            // A publishes version 1 of the shared file.
            let (fh, _) = insist!(a.create(root, "shared"));
            insist!(a.open(fh, true));
            insist!(a.write(fh, 0, &[1u8; 2 * BLOCK_SIZE]));
            insist!(a.fsync(fh));
            insist!(a.close(fh, true));
            // B overwrites it and holds the data dirty (30 s delay).
            insist!(b.open(fh, true));
            insist!(b.write(fh, 0, &[2u8; 2 * BLOCK_SIZE]));
            insist!(b.close(fh, true));
            // Partition B's host for 12 s (faulted run only; scripted
            // partitions consume no randomness).
            if net.faults_active() {
                net.partition(
                    2,
                    PartitionDir::Both,
                    sim.now() + SimDuration::from_secs(12),
                );
            }
            // A reopens while B is unreachable. The server must hold the
            // open and retry B's write-back callback until the partition
            // heals; A's own RPC ladder (≈5 s) is shorter than that, so
            // A re-issues the open until it goes through.
            let attr = insist!(a.open(fh, false));
            assert_eq!(
                attr.size,
                (2 * BLOCK_SIZE) as u64,
                "A sees B's version after the heal"
            );
            let (data, _) = insist!(a.read(fh, 0, (2 * BLOCK_SIZE) as u32));
            assert!(
                data.iter().all(|&x| x == 2),
                "B's dirty data survived the partition"
            );
            insist!(a.close(fh, false));
            // Let delayed writes and the server update daemon drain.
            sim.sleep(SimDuration::from_secs(70)).await;
        }
    });
    sim.run_until(h);
    let snap = tb.stats_snapshot();
    let violations = tb.finish_trace().map_or(0, |t| t.violations.len());
    SharingRun {
        digest: server_digest(&tb.server_fs),
        violations,
        faults: snap.faults,
        gate_ops: 0,
    }
}
