use spritely_harness::{Protocol, RemoteClient, Testbed, TestbedParams};
use spritely_vfs::OpenFlags;
fn main() {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        name_cache: true,
        ..TestbedParams::default()
    });
    let p = tb.proc();
    let c = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => unreachable!(),
    };
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        p.mkdir("/remote/proj").await.unwrap();
        let fd = p
            .open("/remote/proj/f0", OpenFlags::create_write())
            .await
            .unwrap();
        p.write(fd, b"data").await.unwrap();
        p.close(fd).await.unwrap();
        let st = p.stat("/remote/proj/f0").await.unwrap();
        eprintln!(
            "stat size = {} (hits {})",
            st.size,
            c.stats().name_cache_hits
        );
        let st = p.stat("/remote/proj/f0").await.unwrap();
        eprintln!("stat2 size = {}", st.size);
    });
    sim.run_until(h);
}
