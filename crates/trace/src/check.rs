//! Offline protocol-invariant checking over a recorded trace.
//!
//! The checker replays the event stream and asserts the properties the
//! paper's protocol argument rests on:
//!
//! 1. **Legal transitions** — every server state-table transition is an
//!    edge of the 7-state machine (§4.3.4, Figure 4-2).
//! 2. **Callback bound** — at most N−1 consistency callbacks are in
//!    flight at once, N = server service threads (§3.2).
//! 3. **No stale reads** — a read served from a client cache carries a
//!    version no older than the latest version granted to a write open
//!    (§3.1: version numbers detect stale data at reopen).
//! 4. **Cancelled writes** — delayed writes for a removed file are
//!    cancelled, never flushed to the server (§2: "data ... never
//!    written to the server at all" for short-lived files).
//! 5. **fsync claims** — an fsync OK is preceded by write RPCs (with OK
//!    replies) covering every block dirtied before it.
//! 6. **Disk scheduling bound** — every disk completion matches a
//!    queued request, and no queued request is bypassed more often than
//!    the active scheduler allows (FIFO: never; C-LOOK: at most its
//!    aging limit K, from the `disk_sched` meta event).
//! 7. **Batch conservation** — a compound's reply carries exactly as
//!    many inner replies as the request carried inner calls, per
//!    `(from, batch id)`.
//! 8. **At-most-once execution** — the endpoint's duplicate cache must
//!    suppress re-execution: no two `handler_begin` events share a
//!    `(from, xid)` pair (server-originated callbacks, `from` 0, are
//!    exempt — each callback endpoint has its own xid space).
//! 9. **Delegation safety** (DESIGN.md §17) — no two conflicting live
//!    delegations on one file (a write delegation is exclusive); a client
//!    serves no local open from a delegation it does not hold (which
//!    covers use-after-return and use-after-revoke) or while it has a
//!    recall in hand; and every recall a client receives is eventually
//!    matched by a return or a revoke.
//! 10. **Shard ownership** (DESIGN.md §18) — every root-level name
//!     operation is served by the shard that owns the name at that layout
//!     epoch (the checker mirrors the authority layout by replaying
//!     `shard_move` events over the deterministic default placement);
//!     move epochs are strictly increasing; and cross-shard transactions
//!     are atomic: no shard serves either name between `shard_tx_begin`
//!     and the ownership move, a committed end implies the move happened
//!     (and an aborted end implies it did not), and every begun
//!     transaction resolves by the end of the run.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

use spritely_proto::{default_shard, ClientId, FileHandle, NfsProc, BLOCK_SIZE};

use crate::{Cause, EventKind, FState, TraceEvent};

/// One invariant violation, anchored to the offending event.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub seq: u64,
    pub t_us: u64,
    pub invariant: &'static str,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] seq {} t={}us: {}",
            self.invariant, self.seq, self.t_us, self.detail
        )
    }
}

/// Is `from --cause--> to` an edge of the server state machine?
///
/// `to == from` is always accepted for open/close/writeback causes: a
/// second open by the same client, closing one of several handles, or a
/// writeback that races a reopen all leave the derived state unchanged.
fn legal(cause: Cause, from: FState, to: FState) -> bool {
    use FState::*;
    match cause {
        Cause::OpenRead => {
            to == from && !matches!(from, Closed | ClosedDirty)
                || matches!(
                    (from, to),
                    (Closed, OneReader)
                        | (ClosedDirty, OneRdrDirty)
                        | (OneReader, MultReaders)
                        | (OneRdrDirty, MultReaders)
                        | (OneWriter, WriteShared)
                )
        }
        Cause::OpenWrite => {
            to == from && matches!(from, OneWriter | WriteShared)
                || matches!(
                    (from, to),
                    (Closed, OneWriter)
                        | (ClosedDirty, OneWriter)
                        | (OneReader, OneWriter)
                        | (OneReader, WriteShared)
                        | (OneRdrDirty, OneWriter)
                        | (OneRdrDirty, WriteShared)
                        | (MultReaders, WriteShared)
                        | (OneWriter, WriteShared)
                )
        }
        Cause::CloseRead => {
            to == from
                || matches!(
                    (from, to),
                    (OneReader, Closed)
                        | (OneRdrDirty, ClosedDirty)
                        | (MultReaders, OneReader)
                        | (MultReaders, OneRdrDirty)
                        | (WriteShared, Closed)
                        | (WriteShared, ClosedDirty)
                )
        }
        Cause::CloseWrite => {
            to == from
                || matches!(
                    (from, to),
                    (OneWriter, Closed)
                        | (OneWriter, ClosedDirty)
                        | (OneWriter, OneReader)
                        | (OneWriter, OneRdrDirty)
                        | (WriteShared, Closed)
                        | (WriteShared, ClosedDirty)
                )
        }
        Cause::WritebackDone => {
            to == from || matches!((from, to), (ClosedDirty, Closed) | (OneRdrDirty, OneReader))
        }
        // Crash handling and recovery may land anywhere; the point of
        // tracing them is the record, not a legality constraint. A
        // delegation return likewise applies an entire queued open/close
        // history in one step, so any net movement is possible.
        Cause::ClientCrash | Cause::Restore | Cause::DelegReturn => true,
        // Removal and reclaim destroy the entry: derived state Closed.
        Cause::Removed | Cause::Reclaim => to == Closed,
    }
}

#[derive(Default)]
struct CheckState {
    /// Tracked server state per file (absent = CLOSED).
    states: HashMap<FileHandle, FState>,
    /// N from the `server_threads` meta event.
    threads: Option<u64>,
    cb_depth: u64,
    cb_peak: u64,
    /// Latest cache grant per (client, file): Some(v) = may cache at
    /// version v, None = open granted with caching disabled.
    granted: HashMap<(ClientId, FileHandle), Option<u64>>,
    /// Highest version ever granted to a write open, per file.
    latest_write_v: HashMap<FileHandle, u64>,
    /// (client, file) pairs whose delayed writes were cancelled whole
    /// (file removed): no Write RPC may follow.
    removed: HashMap<(ClientId, FileHandle), u64>,
    /// Blocks dirtied but not yet acknowledged by an OK Write reply.
    dirty: HashMap<(ClientId, FileHandle), BTreeSet<u64>>,
    /// In-flight Write RPCs: (caller, xid) -> (file, first_blk, last_blk).
    pending_writes: HashMap<(ClientId, u64), (FileHandle, u64, u64)>,
    /// Reordering bound K from the `disk_sched` meta event ("fifo" = 0,
    /// "clook:K" = K). Absent = traces without the meta are unchecked.
    disk_bound: Option<u64>,
    /// Queued-but-uncompleted disk requests per disk, in arrival order:
    /// (req id, times bypassed).
    disk_pending: HashMap<String, Vec<(u64, u64)>>,
    /// Open compound batches: (from, batch id) -> inner request count.
    batches: HashMap<(ClientId, u64), u64>,
    /// `(from, xid)` pairs that already had a handler execution.
    executed: HashSet<(ClientId, u64)>,
    /// Live delegations per file: (holder, is-write).
    deleg_live: HashMap<FileHandle, Vec<(ClientId, bool)>>,
    /// Recalls a client has received but not yet resolved, keyed by
    /// (holder, file) -> (seq, t_us) of the recall event.
    deleg_recalls: HashMap<(ClientId, FileHandle), (u64, u64)>,
    /// Shard count from the `shards` meta event (absent = 1, unsharded).
    shards: u64,
    /// Mirrored layout overrides (name -> owner), replayed from
    /// `shard_move` events exactly as the authority applies them.
    shard_overrides: HashMap<String, u32>,
    /// Highest `shard_move` epoch seen (epochs must strictly increase).
    shard_epoch: u64,
    /// Open cross-shard transactions (BTreeMap: deterministic iteration).
    shard_txs: BTreeMap<u64, ShardTx>,
}

/// One open cross-shard transaction, from its begin event.
struct ShardTx {
    from_name: String,
    to_name: String,
    seq: u64,
    t_us: u64,
    /// The ownership move for this tx has been published.
    moved: bool,
}

/// Replay `events` and return every invariant violation found (empty =
/// the run upheld the protocol).
pub fn check_trace(events: &[TraceEvent]) -> Vec<Violation> {
    let mut st = CheckState::default();
    let mut out = Vec::new();
    for e in events {
        let flag = |invariant: &'static str, detail: String, out: &mut Vec<Violation>| {
            out.push(Violation {
                seq: e.seq,
                t_us: e.t_us,
                invariant,
                detail,
            });
        };
        match &e.kind {
            EventKind::Meta { key, value } if *key == "server_threads" => {
                st.threads = value.parse().ok();
            }
            EventKind::Meta { key, value } if *key == "shards" => {
                st.shards = value.parse().unwrap_or(1);
            }
            EventKind::Meta { key, value } if *key == "disk_sched" => {
                st.disk_bound = if value == "fifo" {
                    Some(0)
                } else {
                    value.strip_prefix("clook:").and_then(|k| k.parse().ok())
                };
            }
            EventKind::DiskQueue { disk, req, .. } => {
                st.disk_pending
                    .entry(disk.clone())
                    .or_default()
                    .push((*req, 0));
            }
            EventKind::DiskDone { disk, req, .. } => {
                let pending = st.disk_pending.entry(disk.clone()).or_default();
                match pending.iter().position(|(r, _)| r == req) {
                    None => flag(
                        "disk-complete",
                        format!("{disk}: completion of req {req} that was never queued"),
                        &mut out,
                    ),
                    Some(p) => {
                        pending.remove(p);
                        // Everything that arrived earlier and is still
                        // pending was just bypassed once more.
                        for (r, bypass) in pending.iter_mut().take(p) {
                            *bypass += 1;
                            if let Some(k) = st.disk_bound {
                                if *bypass == k + 1 {
                                    flag(
                                        "disk-reorder",
                                        format!(
                                            "{disk}: req {r} bypassed {} times, \
                                             over the scheduler bound K = {k}",
                                            *bypass
                                        ),
                                        &mut out,
                                    );
                                }
                            }
                        }
                    }
                }
            }
            EventKind::Transition {
                fh,
                cause,
                from,
                to,
                ..
            } => {
                let tracked = st.states.get(fh).copied().unwrap_or(FState::Closed);
                if tracked != *from {
                    flag(
                        "legal-transition",
                        format!(
                            "{fh}: transition claims from={} but tracked state is {}",
                            from.name(),
                            tracked.name()
                        ),
                        &mut out,
                    );
                }
                if !legal(*cause, *from, *to) {
                    flag(
                        "legal-transition",
                        format!(
                            "{fh}: {} -> {} is not a legal {} edge",
                            from.name(),
                            to.name(),
                            cause.name()
                        ),
                        &mut out,
                    );
                }
                if *to == FState::Closed {
                    st.states.remove(fh);
                } else {
                    st.states.insert(*fh, *to);
                }
            }
            EventKind::CallbackBegin { target, fh, .. } => {
                st.cb_depth += 1;
                st.cb_peak = st.cb_peak.max(st.cb_depth);
                if let Some(n) = st.threads {
                    // With S shards each server enforces N−1 locally, so
                    // the trace-wide bound is S × (N−1).
                    let bound = st.shards.max(1) * n.saturating_sub(1);
                    if st.cb_depth > bound {
                        flag(
                            "callback-bound",
                            format!(
                                "{} callbacks in flight (to c{} for {fh}) exceeds the \
                                 bound {bound} ({} shard(s) x N-1)",
                                st.cb_depth,
                                target.0,
                                st.shards.max(1)
                            ),
                            &mut out,
                        );
                    }
                }
            }
            EventKind::CallbackEnd { .. } => {
                st.cb_depth = st.cb_depth.saturating_sub(1);
            }
            EventKind::OpenGrant {
                client,
                fh,
                version,
                cache_enabled,
                write,
                ..
            } => {
                if *write {
                    let v = st.latest_write_v.entry(*fh).or_insert(0);
                    *v = (*v).max(*version);
                }
                st.granted
                    .insert((*client, *fh), cache_enabled.then_some(*version));
            }
            EventKind::Invalidate { client, fh } => {
                st.granted.remove(&(*client, *fh));
                st.dirty.remove(&(*client, *fh));
            }
            EventKind::CacheRead {
                client,
                fh,
                version,
            } => match st.granted.get(&(*client, *fh)) {
                None => flag(
                    "stale-read",
                    format!("c{} read {fh} from cache without a live grant", client.0),
                    &mut out,
                ),
                Some(None) => flag(
                    "stale-read",
                    format!(
                        "c{} read {fh} from cache while caching was disabled",
                        client.0
                    ),
                    &mut out,
                ),
                Some(Some(g)) => {
                    if version != g {
                        flag(
                            "stale-read",
                            format!("c{} read {fh} at v{version} but was granted v{g}", client.0),
                            &mut out,
                        );
                    }
                    let latest = st.latest_write_v.get(fh).copied().unwrap_or(0);
                    if *version < latest {
                        flag(
                            "stale-read",
                            format!(
                                "c{} read {fh} at v{version}, older than latest write-open v{latest}",
                                client.0
                            ),
                            &mut out,
                        );
                    }
                }
            },
            EventKind::WriteCancel {
                client,
                fh,
                from_blk,
                blocks,
            } => {
                if *from_blk == 0 {
                    st.removed.insert((*client, *fh), *blocks);
                }
                if let Some(d) = st.dirty.get_mut(&(*client, *fh)) {
                    d.retain(|b| b < from_blk);
                }
            }
            EventKind::BlockDirty { client, fh, blk } => {
                st.dirty.entry((*client, *fh)).or_default().insert(*blk);
            }
            EventKind::RpcCall {
                from,
                xid,
                proc,
                fh: Some(fh),
                offset,
                len,
            } if *proc == NfsProc::Write => {
                if st.removed.contains_key(&(*from, *fh)) {
                    flag(
                        "cancelled-write",
                        format!(
                            "c{} flushed a delayed write to removed file {fh} \
                             (off {offset} len {len}) instead of cancelling it",
                            from.0
                        ),
                        &mut out,
                    );
                }
                if *len > 0 {
                    let first = offset / BLOCK_SIZE as u64;
                    let last = (offset + len - 1) / BLOCK_SIZE as u64;
                    st.pending_writes.insert((*from, *xid), (*fh, first, last));
                }
            }
            EventKind::RpcReply {
                from,
                xid,
                proc,
                ok,
            } if *proc == NfsProc::Write => {
                if let Some((fh, first, last)) = st.pending_writes.remove(&(*from, *xid)) {
                    if *ok {
                        if let Some(d) = st.dirty.get_mut(&(*from, fh)) {
                            d.retain(|b| *b < first || *b > last);
                        }
                    }
                }
            }
            EventKind::FsyncOk { client, fh } => {
                if let Some(d) = st.dirty.get(&(*client, *fh)) {
                    if !d.is_empty() {
                        let blks: Vec<String> = d.iter().take(8).map(|b| b.to_string()).collect();
                        flag(
                            "fsync-claims",
                            format!(
                                "c{} fsync({fh}) returned OK with {} block(s) not yet \
                                 acknowledged by Write replies: [{}]",
                                client.0,
                                d.len(),
                                blks.join(",")
                            ),
                            &mut out,
                        );
                    }
                }
            }
            EventKind::HandlerBegin { from, xid, .. }
                if from.0 != 0 && !st.executed.insert((*from, *xid)) =>
            {
                flag(
                    "dup-execution",
                    format!(
                        "second handler execution for (c{}, xid {}) — the \
                         duplicate cache must suppress re-execution",
                        from.0, xid
                    ),
                    &mut out,
                );
            }
            EventKind::Batch {
                from,
                id,
                count,
                reply,
            } => {
                if *reply {
                    match st.batches.remove(&(*from, *id)) {
                        None => flag(
                            "batch-conservation",
                            format!(
                                "c{} batch {id} reply of {count} without a matching request",
                                from.0
                            ),
                            &mut out,
                        ),
                        Some(sent) if sent != *count => flag(
                            "batch-conservation",
                            format!(
                                "c{} batch {id} sent {sent} inner call(s) but the reply \
                                 carries {count}",
                                from.0
                            ),
                            &mut out,
                        ),
                        Some(_) => {}
                    }
                } else {
                    st.batches.insert((*from, *id), *count);
                }
            }
            EventKind::DelegGrant { client, fh, write } => {
                let live = st.deleg_live.entry(*fh).or_default();
                for (h, w) in live.iter() {
                    if *h != *client && (*write || *w) {
                        flag(
                            "deleg-conflict",
                            format!(
                                "{fh}: {} delegation granted to c{} while c{} holds a {} one",
                                if *write { "write" } else { "read" },
                                client.0,
                                h.0,
                                if *w { "write" } else { "read" }
                            ),
                            &mut out,
                        );
                    }
                }
                live.retain(|(h, _)| h != client);
                live.push((*client, *write));
            }
            EventKind::DelegRecall { client, fh } => {
                // A recall may legitimately reach a holder the server
                // already revoked (delayed delivery), so holding no live
                // delegation here is not itself a violation — but the
                // recall must still resolve via a return or revoke.
                st.deleg_recalls.insert((*client, *fh), (e.seq, e.t_us));
            }
            EventKind::DelegReturn { client, fh, .. } => {
                if let Some(live) = st.deleg_live.get_mut(fh) {
                    live.retain(|(h, _)| h != client);
                    if live.is_empty() {
                        st.deleg_live.remove(fh);
                    }
                }
                st.deleg_recalls.remove(&(*client, *fh));
            }
            EventKind::DelegLocalOpen { client, fh, write } => {
                let covering = st
                    .deleg_live
                    .get(fh)
                    .is_some_and(|l| l.iter().any(|(h, w)| h == client && (*w || !*write)));
                if !covering {
                    flag(
                        "deleg-local-open",
                        format!(
                            "c{} served a local {} open of {fh} without a covering live \
                             delegation (returned or revoked?)",
                            client.0,
                            if *write { "write" } else { "read" }
                        ),
                        &mut out,
                    );
                }
                if st.deleg_recalls.contains_key(&(*client, *fh)) {
                    flag(
                        "deleg-local-open",
                        format!(
                            "c{} served a local open of {fh} while a recall is outstanding",
                            client.0
                        ),
                        &mut out,
                    );
                }
            }
            EventKind::ShardRoute { shard, name, .. } => {
                let n = st.shards.max(1) as u32;
                let owner = st
                    .shard_overrides
                    .get(name)
                    .copied()
                    .unwrap_or_else(|| default_shard(name, n));
                if owner != *shard {
                    flag(
                        "shard-owner",
                        format!(
                            "shard {shard} served \"{name}\" but the layout owner is \
                             shard {owner}"
                        ),
                        &mut out,
                    );
                }
                for (txid, tx) in &st.shard_txs {
                    if !tx.moved && (tx.from_name == *name || tx.to_name == *name) {
                        flag(
                            "shard-atomicity",
                            format!(
                                "shard {shard} served \"{name}\" inside the window of \
                                 open cross-shard tx {txid}"
                            ),
                            &mut out,
                        );
                    }
                }
            }
            EventKind::ShardMove {
                from_name,
                to_name,
                shard,
                epoch,
            } => {
                if *epoch <= st.shard_epoch {
                    flag(
                        "shard-epoch",
                        format!(
                            "move of \"{to_name}\" carries epoch {epoch}, not above the \
                             previous epoch {}",
                            st.shard_epoch
                        ),
                        &mut out,
                    );
                }
                st.shard_epoch = *epoch;
                // Replay exactly what Layout::record_move does: the source
                // name ceases to exist; the target's override collapses
                // when the new owner is its default placement.
                if !from_name.is_empty() {
                    st.shard_overrides.remove(from_name);
                }
                let n = st.shards.max(1) as u32;
                if default_shard(to_name, n) == *shard {
                    st.shard_overrides.remove(to_name);
                } else {
                    st.shard_overrides.insert(to_name.clone(), *shard);
                }
                if let Some(tx) = st
                    .shard_txs
                    .values_mut()
                    .find(|tx| !tx.moved && tx.to_name == *to_name)
                {
                    tx.moved = true;
                }
            }
            EventKind::ShardTxBegin {
                txid,
                from_name,
                to_name,
                ..
            } => {
                if st.shard_txs.contains_key(txid) {
                    flag(
                        "shard-tx",
                        format!("cross-shard tx {txid} begun twice"),
                        &mut out,
                    );
                }
                st.shard_txs.insert(
                    *txid,
                    ShardTx {
                        from_name: from_name.clone(),
                        to_name: to_name.clone(),
                        seq: e.seq,
                        t_us: e.t_us,
                        moved: false,
                    },
                );
            }
            EventKind::ShardTxEnd { txid, committed } => match st.shard_txs.remove(txid) {
                None => flag(
                    "shard-tx",
                    format!("cross-shard tx {txid} ended without a begin"),
                    &mut out,
                ),
                Some(tx) => {
                    if *committed && !tx.moved {
                        flag(
                            "shard-tx",
                            format!(
                                "cross-shard tx {txid} committed but no ownership move \
                                 was published"
                            ),
                            &mut out,
                        );
                    }
                    if !*committed && tx.moved {
                        flag(
                            "shard-tx",
                            format!(
                                "cross-shard tx {txid} aborted after publishing an \
                                 ownership move"
                            ),
                            &mut out,
                        );
                    }
                }
            },
            EventKind::ServerCrash => {
                st.states.clear();
                // Delegation state is NOT cleared here: the reboot discards
                // it server-side, but each holder must still explicitly
                // stop using its copy — clients emit a revoked deleg_return
                // when the recovery path discards their delegations, and
                // any local open served before that discard is checked
                // against the delegation they (still) hold.
            }
            _ => {}
        }
    }
    // A recall a client received must be resolved (returned or revoked)
    // by the end of the run.
    let mut unresolved: Vec<((ClientId, FileHandle), (u64, u64))> =
        st.deleg_recalls.into_iter().collect();
    unresolved.sort_unstable_by_key(|&(_, (seq, _))| seq);
    for ((client, fh), (seq, t_us)) in unresolved {
        out.push(Violation {
            seq,
            t_us,
            invariant: "deleg-recall-unresolved",
            detail: format!(
                "c{} never returned the recalled delegation on {fh} and it was never revoked",
                client.0
            ),
        });
    }
    // Every cross-shard transaction must resolve (commit or abort) by
    // the end of the run.
    for (txid, tx) in st.shard_txs {
        out.push(Violation {
            seq: tx.seq,
            t_us: tx.t_us,
            invariant: "shard-tx-unresolved",
            detail: format!(
                "cross-shard tx {txid} (\"{}\" -> \"{}\") never committed or aborted",
                tx.from_name, tx.to_name
            ),
        });
    }
    out
}

/// Count events of each kind — handy for summaries.
pub fn kind_counts(events: &[TraceEvent]) -> Vec<(&'static str, usize)> {
    let mut order: Vec<&'static str> = Vec::new();
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    for e in events {
        let name = kind_name(&e.kind);
        if !counts.contains_key(name) {
            order.push(name);
        }
        *counts.entry(name).or_insert(0) += 1;
    }
    order.into_iter().map(|n| (n, counts[n])).collect()
}

pub fn kind_name(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::Meta { .. } => "meta",
        EventKind::OpBegin { .. } => "op_begin",
        EventKind::OpEnd { .. } => "op_end",
        EventKind::RpcCall { .. } => "rpc_call",
        EventKind::RpcReply { .. } => "rpc_reply",
        EventKind::RpcXmit { .. } => "rpc_xmit",
        EventKind::RpcArrive { .. } => "rpc_arrive",
        EventKind::HandlerBegin { .. } => "handler_begin",
        EventKind::HandlerEnd { .. } => "handler_end",
        EventKind::Transition { .. } => "transition",
        EventKind::CallbackBegin { .. } => "cb_begin",
        EventKind::CallbackEnd { .. } => "cb_end",
        EventKind::FlushBegin { .. } => "flush_begin",
        EventKind::FlushEnd { .. } => "flush_end",
        EventKind::BlockDirty { .. } => "block_dirty",
        EventKind::CacheRead { .. } => "cache_read",
        EventKind::OpenGrant { .. } => "open_grant",
        EventKind::Invalidate { .. } => "invalidate",
        EventKind::WriteCancel { .. } => "write_cancel",
        EventKind::FsyncOk { .. } => "fsync_ok",
        EventKind::ServerCrash => "server_crash",
        EventKind::DiskQueue { .. } => "disk_queue",
        EventKind::DiskDone { .. } => "disk_done",
        EventKind::SrvCacheRead { .. } => "srv_cache_read",
        EventKind::NetXmit { .. } => "net_xmit",
        EventKind::Batch { .. } => "batch",
        EventKind::Fault { .. } => "fault",
        EventKind::DelegGrant { .. } => "deleg_grant",
        EventKind::DelegRecall { .. } => "deleg_recall",
        EventKind::DelegReturn { .. } => "deleg_return",
        EventKind::DelegLocalOpen { .. } => "deleg_local_open",
        EventKind::ShardRoute { .. } => "shard_route",
        EventKind::ShardMove { .. } => "shard_move",
        EventKind::ShardTxBegin { .. } => "shard_tx_begin",
        EventKind::ShardTxPrepared { .. } => "shard_tx_prepared",
        EventKind::ShardTxEnd { .. } => "shard_tx_end",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh(i: u64) -> FileHandle {
        FileHandle::new(1, i, 1)
    }

    fn ev(seq: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            t_us: seq,
            parent: 0,
            kind,
        }
    }

    #[test]
    fn legal_open_close_cycle_passes() {
        let c = ClientId(1);
        let events = vec![
            ev(
                1,
                EventKind::Transition {
                    fh: fh(1),
                    cause: Cause::OpenWrite,
                    client: c,
                    from: FState::Closed,
                    to: FState::OneWriter,
                    version: 2,
                },
            ),
            ev(
                2,
                EventKind::Transition {
                    fh: fh(1),
                    cause: Cause::CloseWrite,
                    client: c,
                    from: FState::OneWriter,
                    to: FState::ClosedDirty,
                    version: 2,
                },
            ),
            ev(
                3,
                EventKind::Transition {
                    fh: fh(1),
                    cause: Cause::WritebackDone,
                    client: c,
                    from: FState::ClosedDirty,
                    to: FState::Closed,
                    version: 2,
                },
            ),
        ];
        assert!(check_trace(&events).is_empty());
    }

    #[test]
    fn illegal_transition_is_flagged() {
        let events = vec![ev(
            1,
            EventKind::Transition {
                fh: fh(1),
                cause: Cause::OpenRead,
                client: ClientId(1),
                from: FState::Closed,
                to: FState::WriteShared,
                version: 1,
            },
        )];
        let v = check_trace(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "legal-transition");
    }

    #[test]
    fn transition_discontinuity_is_flagged() {
        // Claims from=ONE_WRTR but nothing ever opened the file.
        let events = vec![ev(
            1,
            EventKind::Transition {
                fh: fh(1),
                cause: Cause::CloseWrite,
                client: ClientId(1),
                from: FState::OneWriter,
                to: FState::Closed,
                version: 1,
            },
        )];
        let v = check_trace(&events);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("tracked state"));
    }

    #[test]
    fn callback_bound_uses_meta_thread_count() {
        let mut events = vec![ev(
            1,
            EventKind::Meta {
                key: "server_threads",
                value: "3".into(),
            },
        )];
        for i in 0..3u64 {
            events.push(ev(
                2 + i,
                EventKind::CallbackBegin {
                    target: ClientId(i as u32 + 1),
                    fh: fh(1),
                    writeback: false,
                    invalidate: true,
                },
            ));
        }
        let v = check_trace(&events);
        assert_eq!(v.len(), 1, "third concurrent callback breaks N-1 = 2");
        assert_eq!(v[0].invariant, "callback-bound");
    }

    #[test]
    fn stale_version_read_is_flagged() {
        let c = ClientId(1);
        let events = vec![
            ev(
                1,
                EventKind::OpenGrant {
                    client: c,
                    fh: fh(1),
                    version: 3,
                    prev_version: 2,
                    cache_enabled: true,
                    write: false,
                },
            ),
            ev(
                2,
                EventKind::OpenGrant {
                    client: ClientId(2),
                    fh: fh(1),
                    version: 7,
                    prev_version: 3,
                    cache_enabled: true,
                    write: true,
                },
            ),
            // Client 1 was never invalidated in this forged trace and
            // keeps serving v3 — stale relative to the write open at v7.
            ev(
                3,
                EventKind::CacheRead {
                    client: c,
                    fh: fh(1),
                    version: 3,
                },
            ),
        ];
        let v = check_trace(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "stale-read");
        assert!(v[0].detail.contains("older than latest write-open"));
    }

    #[test]
    fn read_after_invalidate_is_flagged() {
        let c = ClientId(1);
        let events = vec![
            ev(
                1,
                EventKind::OpenGrant {
                    client: c,
                    fh: fh(1),
                    version: 3,
                    prev_version: 2,
                    cache_enabled: true,
                    write: false,
                },
            ),
            ev(
                2,
                EventKind::Invalidate {
                    client: c,
                    fh: fh(1),
                },
            ),
            ev(
                3,
                EventKind::CacheRead {
                    client: c,
                    fh: fh(1),
                    version: 3,
                },
            ),
        ];
        let v = check_trace(&events);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("without a live grant"));
    }

    #[test]
    fn write_after_cancel_is_flagged_and_fsync_claims_checked() {
        let c = ClientId(1);
        let events = vec![
            ev(
                1,
                EventKind::BlockDirty {
                    client: c,
                    fh: fh(1),
                    blk: 0,
                },
            ),
            ev(
                2,
                EventKind::WriteCancel {
                    client: c,
                    fh: fh(1),
                    from_blk: 0,
                    blocks: 1,
                },
            ),
            ev(
                3,
                EventKind::RpcCall {
                    from: c,
                    xid: 9,
                    proc: NfsProc::Write,
                    fh: Some(fh(1)),
                    offset: 0,
                    len: BLOCK_SIZE as u64,
                },
            ),
            // And an fsync claiming a block that never got a Write reply.
            ev(
                4,
                EventKind::BlockDirty {
                    client: c,
                    fh: fh(2),
                    blk: 5,
                },
            ),
            ev(
                5,
                EventKind::FsyncOk {
                    client: c,
                    fh: fh(2),
                },
            ),
        ];
        let v = check_trace(&events);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].invariant, "cancelled-write");
        assert_eq!(v[1].invariant, "fsync-claims");
    }

    fn disk_q(seq: u64, req: u64) -> TraceEvent {
        ev(
            seq,
            EventKind::DiskQueue {
                disk: "d0".into(),
                req,
                block: req * 100,
                write: false,
            },
        )
    }

    fn disk_done(seq: u64, req: u64) -> TraceEvent {
        ev(
            seq,
            EventKind::DiskDone {
                disk: "d0".into(),
                req,
                block: req * 100,
                write: false,
                wait_us: 0,
                pos_us: 0,
            },
        )
    }

    fn sched_meta(value: &str) -> TraceEvent {
        ev(
            1,
            EventKind::Meta {
                key: "disk_sched",
                value: value.into(),
            },
        )
    }

    #[test]
    fn fifo_disk_completions_in_order_pass() {
        let events = vec![
            sched_meta("fifo"),
            disk_q(2, 1),
            disk_q(3, 2),
            disk_done(4, 1),
            disk_done(5, 2),
        ];
        assert!(check_trace(&events).is_empty());
    }

    #[test]
    fn fifo_disk_reorder_is_flagged() {
        let events = vec![
            sched_meta("fifo"),
            disk_q(2, 1),
            disk_q(3, 2),
            disk_done(4, 2), // bypasses req 1 under a FIFO scheduler
            disk_done(5, 1),
        ];
        let v = check_trace(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "disk-reorder");
    }

    #[test]
    fn clook_reorder_within_bound_passes_and_over_bound_is_flagged() {
        // K = 1: req 1 may be bypassed once but not twice.
        let within = vec![
            sched_meta("clook:1"),
            disk_q(2, 1),
            disk_q(3, 2),
            disk_done(4, 2),
            disk_done(5, 1),
        ];
        assert!(check_trace(&within).is_empty());
        let over = vec![
            sched_meta("clook:1"),
            disk_q(2, 1),
            disk_q(3, 2),
            disk_q(4, 3),
            disk_done(5, 2),
            disk_done(6, 3), // second bypass of req 1
            disk_done(7, 1),
        ];
        let v = check_trace(&over);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "disk-reorder");
        assert!(v[0].detail.contains("bypassed 2 times"));
    }

    #[test]
    fn unqueued_disk_completion_is_flagged() {
        let events = vec![sched_meta("fifo"), disk_done(2, 7)];
        let v = check_trace(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "disk-complete");
    }

    #[test]
    fn batch_conservation_checked_per_from_and_id() {
        let c = ClientId(1);
        let good = vec![
            ev(
                1,
                EventKind::Batch {
                    from: c,
                    id: 0,
                    count: 3,
                    reply: false,
                },
            ),
            ev(
                2,
                EventKind::Batch {
                    from: c,
                    id: 0,
                    count: 3,
                    reply: true,
                },
            ),
        ];
        assert!(check_trace(&good).is_empty());
        let short = vec![
            ev(
                1,
                EventKind::Batch {
                    from: c,
                    id: 0,
                    count: 3,
                    reply: false,
                },
            ),
            ev(
                2,
                EventKind::Batch {
                    from: c,
                    id: 0,
                    count: 2,
                    reply: true,
                },
            ),
        ];
        let v = check_trace(&short);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "batch-conservation");
        let orphan = vec![ev(
            1,
            EventKind::Batch {
                from: c,
                id: 7,
                count: 1,
                reply: true,
            },
        )];
        let v = check_trace(&orphan);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("without a matching request"));
    }

    #[test]
    fn duplicate_handler_execution_is_flagged() {
        let begin = |seq, from: u32, xid| {
            ev(
                seq,
                EventKind::HandlerBegin {
                    from: ClientId(from),
                    xid,
                    proc: NfsProc::Read,
                },
            )
        };
        // Same (from, xid) twice: the dup cache failed.
        let v = check_trace(&[begin(1, 1, 5), begin(2, 1, 5)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "dup-execution");
        // Distinct xids, and server-originated callbacks (from 0), pass.
        let ok = check_trace(&[
            begin(1, 1, 5),
            begin(2, 1, 6),
            begin(3, 0, 0),
            begin(4, 0, 0),
        ]);
        assert!(ok.is_empty());
    }

    #[test]
    fn conflicting_delegations_are_flagged() {
        let grant = |seq, client: u32, write| {
            ev(
                seq,
                EventKind::DelegGrant {
                    client: ClientId(client),
                    fh: fh(1),
                    write,
                },
            )
        };
        // Two read delegations coexist fine.
        assert!(check_trace(&[grant(1, 1, false), grant(2, 2, false)]).is_empty());
        // A write delegation while a read one is live conflicts.
        let v = check_trace(&[grant(1, 1, false), grant(2, 2, true)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "deleg-conflict");
        // Anything granted while a write delegation is live conflicts.
        let v = check_trace(&[grant(1, 1, true), grant(2, 2, false)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "deleg-conflict");
        // ...but returning it first is fine.
        let ok = check_trace(&[
            grant(1, 1, true),
            ev(
                2,
                EventKind::DelegReturn {
                    client: ClientId(1),
                    fh: fh(1),
                    revoked: false,
                },
            ),
            grant(3, 2, false),
        ]);
        assert!(ok.is_empty());
    }

    #[test]
    fn local_open_needs_a_covering_live_delegation() {
        let c = ClientId(1);
        let local = |seq, write| {
            ev(
                seq,
                EventKind::DelegLocalOpen {
                    client: c,
                    fh: fh(1),
                    write,
                },
            )
        };
        // No grant at all.
        let v = check_trace(&[local(1, false)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "deleg-local-open");
        // A read delegation does not cover a local write open.
        let v = check_trace(&[
            ev(
                1,
                EventKind::DelegGrant {
                    client: c,
                    fh: fh(1),
                    write: false,
                },
            ),
            local(2, true),
        ]);
        assert_eq!(v.len(), 1);
        // Use after revoke is flagged.
        let v = check_trace(&[
            ev(
                1,
                EventKind::DelegGrant {
                    client: c,
                    fh: fh(1),
                    write: true,
                },
            ),
            local(2, true),
            ev(
                3,
                EventKind::DelegReturn {
                    client: c,
                    fh: fh(1),
                    revoked: true,
                },
            ),
            local(4, false),
        ]);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("returned or revoked"));
    }

    #[test]
    fn local_open_during_outstanding_recall_is_flagged() {
        let c = ClientId(1);
        let events = vec![
            ev(
                1,
                EventKind::DelegGrant {
                    client: c,
                    fh: fh(1),
                    write: true,
                },
            ),
            ev(
                2,
                EventKind::DelegRecall {
                    client: c,
                    fh: fh(1),
                },
            ),
            ev(
                3,
                EventKind::DelegLocalOpen {
                    client: c,
                    fh: fh(1),
                    write: false,
                },
            ),
            ev(
                4,
                EventKind::DelegReturn {
                    client: c,
                    fh: fh(1),
                    revoked: false,
                },
            ),
        ];
        let v = check_trace(&events);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("recall is outstanding"));
    }

    #[test]
    fn unresolved_recall_is_flagged_resolved_is_not() {
        let c = ClientId(1);
        let grant = ev(
            1,
            EventKind::DelegGrant {
                client: c,
                fh: fh(1),
                write: false,
            },
        );
        let recall = ev(
            2,
            EventKind::DelegRecall {
                client: c,
                fh: fh(1),
            },
        );
        let v = check_trace(&[grant.clone(), recall.clone()]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "deleg-recall-unresolved");
        // A revoke resolves it just as a return does.
        let resolved = check_trace(&[
            grant,
            recall,
            ev(
                3,
                EventKind::DelegReturn {
                    client: c,
                    fh: fh(1),
                    revoked: true,
                },
            ),
        ]);
        assert!(resolved.is_empty());
    }

    fn shards_meta(n: u64) -> TraceEvent {
        ev(
            1,
            EventKind::Meta {
                key: "shards",
                value: n.to_string(),
            },
        )
    }

    fn route(seq: u64, shard: u32, name: &str) -> TraceEvent {
        ev(
            seq,
            EventKind::ShardRoute {
                shard,
                name: name.into(),
                epoch: 1,
            },
        )
    }

    #[test]
    fn shard_route_must_match_layout_owner() {
        let n = 4;
        let name = "alpha";
        let owner = default_shard(name, n as u32);
        let wrong = (owner + 1) % n as u32;
        assert!(check_trace(&[shards_meta(n), route(2, owner, name)]).is_empty());
        let v = check_trace(&[shards_meta(n), route(2, wrong, name)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "shard-owner");
    }

    #[test]
    fn shard_move_retargets_ownership_and_epochs_increase() {
        let n = 4u64;
        let name = "beta";
        let owner = default_shard(name, n as u32);
        let new_owner = (owner + 1) % n as u32;
        let mv = |seq, epoch| {
            ev(
                seq,
                EventKind::ShardMove {
                    from_name: String::new(),
                    to_name: name.into(),
                    shard: new_owner,
                    epoch,
                },
            )
        };
        // After the move, the new owner serves the name; the old one must not.
        let ok = check_trace(&[shards_meta(n), mv(2, 2), route(3, new_owner, name)]);
        assert!(ok.is_empty());
        let v = check_trace(&[shards_meta(n), mv(2, 2), route(3, owner, name)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "shard-owner");
        // A stale epoch on a second move is flagged.
        let v = check_trace(&[shards_meta(n), mv(2, 2), mv(3, 2)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "shard-epoch");
    }

    #[test]
    fn shard_tx_window_is_atomic() {
        let n = 2u64;
        let name = "gamma";
        let owner = default_shard(name, n as u32);
        let begin = ev(
            2,
            EventKind::ShardTxBegin {
                txid: 1,
                from_shard: 0,
                to_shard: 1,
                from_name: "src".into(),
                to_name: name.into(),
                link: false,
            },
        );
        let mv = ev(
            4,
            EventKind::ShardMove {
                from_name: "src".into(),
                to_name: name.into(),
                shard: owner,
                epoch: 2,
            },
        );
        let end = |seq, committed| ev(seq, EventKind::ShardTxEnd { txid: 1, committed });
        // Serving either name inside the begin..move window is flagged.
        let v = check_trace(&[
            shards_meta(n),
            begin.clone(),
            route(3, owner, name),
            mv.clone(),
            end(5, true),
        ]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "shard-atomicity");
        // After the move the name is served freely again.
        let ok = check_trace(&[
            shards_meta(n),
            begin.clone(),
            mv.clone(),
            route(5, owner, name),
            end(6, true),
        ]);
        assert!(ok.is_empty());
        // A committed end without a move, and an unresolved begin, are flagged.
        let v = check_trace(&[shards_meta(n), begin.clone(), end(3, true)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "shard-tx");
        let v = check_trace(&[shards_meta(n), begin]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "shard-tx-unresolved");
    }

    #[test]
    fn callback_bound_scales_with_shard_count() {
        // 2 shards x (3-1) threads = 4 concurrent callbacks allowed.
        let mut events = vec![
            ev(
                1,
                EventKind::Meta {
                    key: "server_threads",
                    value: "3".into(),
                },
            ),
            ev(
                2,
                EventKind::Meta {
                    key: "shards",
                    value: "2".into(),
                },
            ),
        ];
        for i in 0..5u64 {
            events.push(ev(
                3 + i,
                EventKind::CallbackBegin {
                    target: ClientId(i as u32 + 1),
                    fh: fh(1),
                    writeback: false,
                    invalidate: true,
                },
            ));
        }
        let v = check_trace(&events);
        assert_eq!(v.len(), 1, "fifth concurrent callback breaks 2 x (N-1) = 4");
        assert_eq!(v[0].invariant, "callback-bound");
    }

    #[test]
    fn ok_write_replies_discharge_fsync_claims() {
        let c = ClientId(1);
        let events = vec![
            ev(
                1,
                EventKind::BlockDirty {
                    client: c,
                    fh: fh(1),
                    blk: 0,
                },
            ),
            ev(
                2,
                EventKind::BlockDirty {
                    client: c,
                    fh: fh(1),
                    blk: 1,
                },
            ),
            ev(
                3,
                EventKind::RpcCall {
                    from: c,
                    xid: 1,
                    proc: NfsProc::Write,
                    fh: Some(fh(1)),
                    offset: 0,
                    len: 2 * BLOCK_SIZE as u64,
                },
            ),
            ev(
                4,
                EventKind::RpcReply {
                    from: c,
                    xid: 1,
                    proc: NfsProc::Write,
                    ok: true,
                },
            ),
            ev(
                5,
                EventKind::FsyncOk {
                    client: c,
                    fh: fh(1),
                },
            ),
        ];
        assert!(check_trace(&events).is_empty());
    }
}
