//! Trace serialization: JSONL (the byte-stable regression format) and
//! Chrome `trace_event` JSON (loadable in Perfetto / chrome://tracing).

use std::fmt::Write as _;

use crate::{json_escape, EventKind, TraceEvent};

/// Serialize a trace as JSON Lines: one event per line, fixed field
/// order, no floats. Identical seeds yield byte-identical output.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        write_event_json(&mut out, e);
        out.push('\n');
    }
    out
}

fn write_event_json(out: &mut String, e: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"seq\":{},\"t\":{},\"par\":{}",
        e.seq, e.t_us, e.parent
    );
    match &e.kind {
        EventKind::Meta { key, value } => {
            let _ = write!(
                out,
                ",\"ev\":\"meta\",\"key\":\"{}\",\"value\":\"{}\"",
                json_escape(key),
                json_escape(value)
            );
        }
        EventKind::OpBegin { client, op, fh } => {
            let _ = write!(
                out,
                ",\"ev\":\"op_begin\",\"client\":{},\"op\":\"{}\",\"fh\":\"{}\"",
                client.0, op, fh
            );
        }
        EventKind::OpEnd { client, op, ok } => {
            let _ = write!(
                out,
                ",\"ev\":\"op_end\",\"client\":{},\"op\":\"{}\",\"ok\":{}",
                client.0, op, ok
            );
        }
        EventKind::RpcCall {
            from,
            xid,
            proc,
            fh,
            offset,
            len,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"rpc_call\",\"from\":{},\"xid\":{},\"proc\":\"{}\"",
                from.0,
                xid,
                proc.name()
            );
            if let Some(fh) = fh {
                let _ = write!(out, ",\"fh\":\"{fh}\"");
            }
            let _ = write!(out, ",\"off\":{offset},\"len\":{len}");
        }
        EventKind::RpcReply {
            from,
            xid,
            proc,
            ok,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"rpc_reply\",\"from\":{},\"xid\":{},\"proc\":\"{}\",\"ok\":{}",
                from.0,
                xid,
                proc.name(),
                ok
            );
        }
        EventKind::RpcXmit { from, xid } => {
            let _ = write!(
                out,
                ",\"ev\":\"rpc_xmit\",\"from\":{},\"xid\":{}",
                from.0, xid
            );
        }
        EventKind::RpcArrive { from, xid, dup } => {
            let _ = write!(
                out,
                ",\"ev\":\"rpc_arrive\",\"from\":{},\"xid\":{},\"dup\":{}",
                from.0, xid, dup
            );
        }
        EventKind::HandlerBegin { from, xid, proc } => {
            let _ = write!(
                out,
                ",\"ev\":\"handler_begin\",\"from\":{},\"xid\":{},\"proc\":\"{}\"",
                from.0,
                xid,
                proc.name()
            );
        }
        EventKind::HandlerEnd {
            from,
            xid,
            proc,
            ok,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"handler_end\",\"from\":{},\"xid\":{},\"proc\":\"{}\",\"ok\":{}",
                from.0,
                xid,
                proc.name(),
                ok
            );
        }
        EventKind::Transition {
            fh,
            cause,
            client,
            from,
            to,
            version,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"transition\",\"fh\":\"{}\",\"cause\":\"{}\",\"client\":{},\"from\":\"{}\",\"to\":\"{}\",\"ver\":{}",
                fh,
                cause.name(),
                client.0,
                from.name(),
                to.name(),
                version
            );
        }
        EventKind::CallbackBegin {
            target,
            fh,
            writeback,
            invalidate,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"cb_begin\",\"target\":{},\"fh\":\"{}\",\"writeback\":{},\"invalidate\":{}",
                target.0, fh, writeback, invalidate
            );
        }
        EventKind::CallbackEnd { target, fh, ok } => {
            let _ = write!(
                out,
                ",\"ev\":\"cb_end\",\"target\":{},\"fh\":\"{}\",\"ok\":{}",
                target.0, fh, ok
            );
        }
        EventKind::FlushBegin { client, fh, direct } => {
            let _ = write!(
                out,
                ",\"ev\":\"flush_begin\",\"client\":{},\"fh\":\"{}\",\"direct\":{}",
                client.0, fh, direct
            );
        }
        EventKind::FlushEnd { client, fh, ok } => {
            let _ = write!(
                out,
                ",\"ev\":\"flush_end\",\"client\":{},\"fh\":\"{}\",\"ok\":{}",
                client.0, fh, ok
            );
        }
        EventKind::BlockDirty { client, fh, blk } => {
            let _ = write!(
                out,
                ",\"ev\":\"block_dirty\",\"client\":{},\"fh\":\"{}\",\"blk\":{}",
                client.0, fh, blk
            );
        }
        EventKind::CacheRead {
            client,
            fh,
            version,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"cache_read\",\"client\":{},\"fh\":\"{}\",\"ver\":{}",
                client.0, fh, version
            );
        }
        EventKind::OpenGrant {
            client,
            fh,
            version,
            prev_version,
            cache_enabled,
            write,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"open_grant\",\"client\":{},\"fh\":\"{}\",\"ver\":{},\"prev\":{},\"cache\":{},\"write\":{}",
                client.0, fh, version, prev_version, cache_enabled, write
            );
        }
        EventKind::Invalidate { client, fh } => {
            let _ = write!(
                out,
                ",\"ev\":\"invalidate\",\"client\":{},\"fh\":\"{}\"",
                client.0, fh
            );
        }
        EventKind::WriteCancel {
            client,
            fh,
            from_blk,
            blocks,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"write_cancel\",\"client\":{},\"fh\":\"{}\",\"from_blk\":{},\"blocks\":{}",
                client.0, fh, from_blk, blocks
            );
        }
        EventKind::FsyncOk { client, fh } => {
            let _ = write!(
                out,
                ",\"ev\":\"fsync_ok\",\"client\":{},\"fh\":\"{}\"",
                client.0, fh
            );
        }
        EventKind::ServerCrash => {
            let _ = write!(out, ",\"ev\":\"server_crash\"");
        }
        EventKind::DiskQueue {
            disk,
            req,
            block,
            write,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"disk_queue\",\"disk\":\"{}\",\"req\":{},\"blk\":{},\"write\":{}",
                json_escape(disk),
                req,
                block,
                write
            );
        }
        EventKind::DiskDone {
            disk,
            req,
            block,
            write,
            wait_us,
            pos_us,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"disk_done\",\"disk\":\"{}\",\"req\":{},\"blk\":{},\"write\":{},\"wait\":{},\"pos\":{}",
                json_escape(disk),
                req,
                block,
                write,
                wait_us,
                pos_us
            );
        }
        EventKind::SrvCacheRead { ino, blk, hit } => {
            let _ = write!(
                out,
                ",\"ev\":\"srv_cache_read\",\"ino\":{ino},\"blk\":{blk},\"hit\":{hit}"
            );
        }
        EventKind::NetXmit {
            host,
            to_server,
            bytes,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"net_xmit\",\"host\":{host},\"up\":{to_server},\"bytes\":{bytes}"
            );
        }
        EventKind::Batch {
            from,
            id,
            count,
            reply,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"batch\",\"from\":{},\"id\":{id},\"count\":{count},\"reply\":{reply}",
                from.0
            );
        }
        EventKind::Fault {
            host,
            to_client,
            xid,
            kind,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"fault\",\"host\":{host},\"to_client\":{to_client},\"xid\":{xid},\"kind\":\"{kind}\""
            );
        }
        EventKind::DelegGrant { client, fh, write } => {
            let _ = write!(
                out,
                ",\"ev\":\"deleg_grant\",\"client\":{},\"fh\":\"{}\",\"write\":{}",
                client.0, fh, write
            );
        }
        EventKind::DelegRecall { client, fh } => {
            let _ = write!(
                out,
                ",\"ev\":\"deleg_recall\",\"client\":{},\"fh\":\"{}\"",
                client.0, fh
            );
        }
        EventKind::DelegReturn {
            client,
            fh,
            revoked,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"deleg_return\",\"client\":{},\"fh\":\"{}\",\"revoked\":{}",
                client.0, fh, revoked
            );
        }
        EventKind::DelegLocalOpen { client, fh, write } => {
            let _ = write!(
                out,
                ",\"ev\":\"deleg_local_open\",\"client\":{},\"fh\":\"{}\",\"write\":{}",
                client.0, fh, write
            );
        }
        EventKind::ShardRoute { shard, name, epoch } => {
            let _ = write!(
                out,
                ",\"ev\":\"shard_route\",\"shard\":{shard},\"name\":\"{}\",\"epoch\":{epoch}",
                json_escape(name)
            );
        }
        EventKind::ShardMove {
            from_name,
            to_name,
            shard,
            epoch,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"shard_move\",\"from\":\"{}\",\"to\":\"{}\",\"shard\":{shard},\"epoch\":{epoch}",
                json_escape(from_name),
                json_escape(to_name)
            );
        }
        EventKind::ShardTxBegin {
            txid,
            from_shard,
            to_shard,
            from_name,
            to_name,
            link,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"shard_tx_begin\",\"txid\":{txid},\"from_shard\":{from_shard},\"to_shard\":{to_shard},\"from\":\"{}\",\"to\":\"{}\",\"link\":{link}",
                json_escape(from_name),
                json_escape(to_name)
            );
        }
        EventKind::ShardTxPrepared { txid, existed } => {
            let _ = write!(
                out,
                ",\"ev\":\"shard_tx_prepared\",\"txid\":{txid},\"existed\":{existed}"
            );
        }
        EventKind::ShardTxEnd { txid, committed } => {
            let _ = write!(
                out,
                ",\"ev\":\"shard_tx_end\",\"txid\":{txid},\"committed\":{committed}"
            );
        }
    }
    out.push('}');
}

/// Pid used for server-side rows in the Chrome export.
const SERVER_PID: u32 = 0;

/// Serialize a trace in the Chrome `trace_event` format. Open
/// `ui.perfetto.dev` and drop the file in. Server-side work appears
/// under pid 0; each client under its own pid.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    // Process-name metadata rows.
    let mut pids: Vec<u32> = events.iter().filter_map(|e| chrome_pid(&e.kind)).collect();
    pids.push(SERVER_PID);
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        let name = if pid == SERVER_PID {
            "server".to_string()
        } else {
            format!("client {pid}")
        };
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
        );
    }
    for e in events {
        if let Some(line) = chrome_event(e) {
            push(line, &mut out);
        }
    }
    out.push_str("\n]}\n");
    out
}

fn chrome_pid(kind: &EventKind) -> Option<u32> {
    match kind {
        EventKind::OpBegin { client, .. }
        | EventKind::OpEnd { client, .. }
        | EventKind::FlushBegin { client, .. }
        | EventKind::FlushEnd { client, .. }
        | EventKind::BlockDirty { client, .. }
        | EventKind::CacheRead { client, .. }
        | EventKind::Invalidate { client, .. }
        | EventKind::WriteCancel { client, .. }
        | EventKind::FsyncOk { client, .. }
        | EventKind::OpenGrant { client, .. }
        | EventKind::DelegLocalOpen { client, .. } => Some(client.0),
        EventKind::RpcCall { from, .. }
        | EventKind::RpcReply { from, .. }
        | EventKind::RpcXmit { from, .. }
        | EventKind::RpcArrive { from, .. } => Some(from.0),
        _ => None,
    }
}

fn span(ph: char, pid: u32, tid: u32, name: &str, t: u64) -> String {
    format!(
        "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{t},\"name\":\"{}\",\"cat\":\"snfs\"}}",
        json_escape(name)
    )
}

fn instant(pid: u32, tid: u32, name: &str, t: u64, args: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{t},\"s\":\"t\",\"name\":\"{}\",\"cat\":\"snfs\",\"args\":{{{args}}}}}",
        json_escape(name)
    )
}

fn chrome_event(e: &TraceEvent) -> Option<String> {
    let t = e.t_us;
    Some(match &e.kind {
        EventKind::Meta { key, value } => instant(
            SERVER_PID,
            0,
            &format!("meta {key}"),
            t,
            &format!("\"value\":\"{}\"", json_escape(value)),
        ),
        EventKind::OpBegin { client, op, fh } => {
            span('B', client.0, 1, &format!("{op} {fh}"), t)
        }
        EventKind::OpEnd { client, op, .. } => span('E', client.0, 1, op, t),
        EventKind::RpcCall { from, xid, proc, .. } => format!(
            "{{\"ph\":\"b\",\"pid\":{},\"tid\":2,\"ts\":{t},\"id\":{xid},\"name\":\"{}\",\"cat\":\"rpc\"}}",
            from.0,
            proc.name()
        ),
        EventKind::RpcReply { from, xid, proc, .. } => format!(
            "{{\"ph\":\"e\",\"pid\":{},\"tid\":2,\"ts\":{t},\"id\":{xid},\"name\":\"{}\",\"cat\":\"rpc\"}}",
            from.0,
            proc.name()
        ),
        EventKind::RpcXmit { from, xid } => {
            instant(from.0, 2, &format!("xmit xid {xid}"), t, "")
        }
        EventKind::RpcArrive { from, xid, dup } => instant(
            SERVER_PID,
            2,
            &format!(
                "arrive c{} xid {xid}{}",
                from.0,
                if *dup { " (dup)" } else { "" }
            ),
            t,
            "",
        ),
        EventKind::HandlerBegin { from, proc, .. } => span(
            'B',
            SERVER_PID,
            100 + from.0,
            &format!("{} (c{})", proc.name(), from.0),
            t,
        ),
        EventKind::HandlerEnd { from, proc, .. } => {
            span('E', SERVER_PID, 100 + from.0, proc.name(), t)
        }
        EventKind::Transition {
            fh,
            cause,
            from,
            to,
            ..
        } => instant(
            SERVER_PID,
            1,
            &format!("{fh}: {} -> {} ({})", from.name(), to.name(), cause.name()),
            t,
            "",
        ),
        EventKind::CallbackBegin { target, fh, .. } => span(
            'B',
            SERVER_PID,
            200 + target.0,
            &format!("callback c{} {fh}", target.0),
            t,
        ),
        EventKind::CallbackEnd { target, .. } => {
            span('E', SERVER_PID, 200 + target.0, "callback", t)
        }
        EventKind::FlushBegin { client, fh, direct } => span(
            'B',
            client.0,
            3,
            &format!("flush {fh}{}", if *direct { " (direct)" } else { "" }),
            t,
        ),
        EventKind::FlushEnd { client, .. } => span('E', client.0, 3, "flush", t),
        EventKind::BlockDirty { client, fh, blk } => {
            instant(client.0, 1, &format!("dirty {fh}#{blk}"), t, "")
        }
        EventKind::CacheRead { client, fh, version } => instant(
            client.0,
            1,
            &format!("cache read {fh} v{version}"),
            t,
            "",
        ),
        EventKind::OpenGrant {
            client,
            fh,
            version,
            cache_enabled,
            ..
        } => instant(
            client.0,
            1,
            &format!(
                "grant {fh} v{version}{}",
                if *cache_enabled { "" } else { " (no cache)" }
            ),
            t,
            "",
        ),
        EventKind::Invalidate { client, fh } => {
            instant(client.0, 1, &format!("invalidate {fh}"), t, "")
        }
        EventKind::WriteCancel {
            client, fh, blocks, ..
        } => instant(client.0, 1, &format!("cancel {fh} ({blocks} blks)"), t, ""),
        EventKind::FsyncOk { client, fh } => {
            instant(client.0, 1, &format!("fsync ok {fh}"), t, "")
        }
        EventKind::ServerCrash => instant(SERVER_PID, 1, "SERVER CRASH", t, ""),
        EventKind::DiskQueue {
            disk, req, block, write,
        } => format!(
            "{{\"ph\":\"b\",\"pid\":{SERVER_PID},\"tid\":4,\"ts\":{t},\"id\":{req},\"name\":\"{} {} blk {block}\",\"cat\":\"disk\"}}",
            json_escape(disk),
            if *write { "w" } else { "r" },
        ),
        EventKind::DiskDone { disk, req, .. } => format!(
            "{{\"ph\":\"e\",\"pid\":{SERVER_PID},\"tid\":4,\"ts\":{t},\"id\":{req},\"name\":\"{}\",\"cat\":\"disk\"}}",
            json_escape(disk),
        ),
        EventKind::SrvCacheRead { ino, blk, hit } => instant(
            SERVER_PID,
            5,
            &format!(
                "srv cache {} {ino}#{blk}",
                if *hit { "hit" } else { "miss" }
            ),
            t,
            "",
        ),
        EventKind::NetXmit {
            host,
            to_server,
            bytes,
        } => instant(
            *host,
            6,
            &format!("xmit {} {bytes}B", if *to_server { "up" } else { "down" }),
            t,
            "",
        ),
        EventKind::Batch {
            from, id, count, reply,
        } => instant(
            from.0,
            6,
            &format!(
                "batch {}#{id} x{count}",
                if *reply { "reply" } else { "req" }
            ),
            t,
            "",
        ),
        EventKind::Fault {
            host,
            to_client,
            kind,
            ..
        } => instant(
            *host,
            6,
            &format!(
                "fault {kind} {}",
                if *to_client { "to-client" } else { "to-server" }
            ),
            t,
            "",
        ),
        EventKind::DelegGrant { client, fh, write } => instant(
            SERVER_PID,
            1,
            &format!(
                "deleg grant c{} {fh} ({})",
                client.0,
                if *write { "write" } else { "read" }
            ),
            t,
            "",
        ),
        EventKind::DelegRecall { client, fh } => instant(
            SERVER_PID,
            1,
            &format!("deleg recall c{} {fh}", client.0),
            t,
            "",
        ),
        EventKind::DelegReturn {
            client,
            fh,
            revoked,
        } => instant(
            SERVER_PID,
            1,
            &format!(
                "deleg {} c{} {fh}",
                if *revoked { "revoke" } else { "return" },
                client.0
            ),
            t,
            "",
        ),
        EventKind::DelegLocalOpen { client, fh, write } => instant(
            client.0,
            1,
            &format!(
                "local open {fh} ({})",
                if *write { "write" } else { "read" }
            ),
            t,
            "",
        ),
        EventKind::ShardRoute { shard, name, epoch } => instant(
            SERVER_PID,
            7,
            &format!("shard {shard} serves \"{name}\" (e{epoch})"),
            t,
            "",
        ),
        EventKind::ShardMove {
            from_name,
            to_name,
            shard,
            epoch,
        } => instant(
            SERVER_PID,
            7,
            &format!("move \"{from_name}\" -> \"{to_name}\" @ shard {shard} (e{epoch})"),
            t,
            "",
        ),
        EventKind::ShardTxBegin {
            txid,
            from_shard,
            to_shard,
            link,
            ..
        } => instant(
            SERVER_PID,
            7,
            &format!(
                "tx {txid} begin {} s{from_shard}->s{to_shard}",
                if *link { "link" } else { "rename" }
            ),
            t,
            "",
        ),
        EventKind::ShardTxPrepared { txid, existed } => instant(
            SERVER_PID,
            7,
            &format!(
                "tx {txid} prepared{}",
                if *existed { " (target existed)" } else { "" }
            ),
            t,
            "",
        ),
        EventKind::ShardTxEnd { txid, committed } => instant(
            SERVER_PID,
            7,
            &format!(
                "tx {txid} {}",
                if *committed { "committed" } else { "aborted" }
            ),
            t,
            "",
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spritely_proto::{ClientId, FileHandle};

    #[test]
    fn jsonl_is_stable_and_one_line_per_event() {
        let ev = vec![
            TraceEvent {
                seq: 1,
                t_us: 5,
                parent: 0,
                kind: EventKind::Meta {
                    key: "protocol",
                    value: "snfs".into(),
                },
            },
            TraceEvent {
                seq: 2,
                t_us: 9,
                parent: 1,
                kind: EventKind::FsyncOk {
                    client: ClientId(1),
                    fh: FileHandle::new(1, 2, 3),
                },
            },
        ];
        let s = to_jsonl(&ev);
        assert_eq!(s.lines().count(), 2);
        assert_eq!(s, to_jsonl(&ev), "serialization is a pure function");
        assert!(s.starts_with("{\"seq\":1,\"t\":5,\"par\":0,\"ev\":\"meta\""));
    }

    #[test]
    fn chrome_export_is_json_shaped() {
        let ev = vec![TraceEvent {
            seq: 1,
            t_us: 0,
            parent: 0,
            kind: EventKind::ServerCrash,
        }];
        let s = to_chrome_json(&ev);
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.trim_end().ends_with("]}"));
    }
}
