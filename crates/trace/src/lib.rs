//! Deterministic causal event tracing for the SNFS simulation.
//!
//! Every interesting action in a run — a client operation, the RPCs it
//! issues, the server handler that services each RPC, the state-table
//! transition it causes, the callbacks that fan out, and the client
//! flushes those callbacks trigger — is recorded as a [`TraceEvent`]
//! with a sim-time timestamp, a sequence number, and a causal parent
//! link. Because the simulator is single-threaded and deterministic,
//! identical seeds yield byte-identical traces, so a serialized trace
//! doubles as a regression artifact.
//!
//! The crate also ships an offline [`check`]er that replays a trace and
//! asserts the protocol invariants the paper argues for (§3.2, §4.3.4).

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use spritely_proto::{ClientId, FileHandle, NfsProc};
use spritely_sim::Sim;

pub mod check;
pub mod export;
pub mod profile;

pub use check::{check_trace, Violation};
pub use export::{to_chrome_json, to_jsonl};
pub use profile::{
    profile_trace, profile_trace_bucketed, OpKindProfile, OpProfile, Phase, Profile, RpcClaims,
    NUM_PHASES,
};

/// The seven server cache-state values (paper §4.3.4, Figure 4-2),
/// mirrored here so the trace crate does not depend on `core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FState {
    Closed,
    ClosedDirty,
    OneReader,
    OneRdrDirty,
    MultReaders,
    OneWriter,
    WriteShared,
}

impl FState {
    pub fn name(self) -> &'static str {
        match self {
            FState::Closed => "CLOSED",
            FState::ClosedDirty => "CLOSED_DIRTY",
            FState::OneReader => "ONE_RDR",
            FState::OneRdrDirty => "ONE_RDR_DIRTY",
            FState::MultReaders => "MULT_RDRS",
            FState::OneWriter => "ONE_WRTR",
            FState::WriteShared => "WRITE_SHARED",
        }
    }
}

impl fmt::Display for FState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a state-table transition happened — the "input" column of the
/// state machine in paper Figure 4-2, plus the failure/recovery edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    OpenRead,
    OpenWrite,
    CloseRead,
    CloseWrite,
    /// A dirty client finished writing back (callback completed OK).
    WritebackDone,
    /// The client holding state crashed (or was declared dead).
    ClientCrash,
    /// The file was removed; its table entry is gone.
    Removed,
    /// The entry was reclaimed (dropped) to bound table size.
    Reclaim,
    /// Post-reboot recovery re-created the entry from a client report.
    Restore,
    /// A delegation came back (returned or revoked): the holder's queued
    /// open/close history is applied to the entry in one step.
    DelegReturn,
}

impl Cause {
    pub fn name(self) -> &'static str {
        match self {
            Cause::OpenRead => "open_read",
            Cause::OpenWrite => "open_write",
            Cause::CloseRead => "close_read",
            Cause::CloseWrite => "close_write",
            Cause::WritebackDone => "writeback_done",
            Cause::ClientCrash => "client_crash",
            Cause::Removed => "removed",
            Cause::Reclaim => "reclaim",
            Cause::Restore => "restore",
            Cause::DelegReturn => "deleg_return",
        }
    }
}

/// One recorded event. `parent` is the sequence number of the causally
/// preceding event (0 = root). Sequence numbers start at 1 and are
/// assigned in emission order, which — in a single-threaded
/// deterministic simulator — is a total order consistent with
/// causality.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub seq: u64,
    pub t_us: u64,
    pub parent: u64,
    pub kind: EventKind,
}

/// What happened. Field order here fixes the JSONL field order.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Run-level metadata (protocol, thread counts, seed, …).
    Meta { key: &'static str, value: String },
    /// A client-visible operation began (open/close/fsync/remove).
    OpBegin {
        client: ClientId,
        op: &'static str,
        fh: FileHandle,
    },
    OpEnd {
        client: ClientId,
        op: &'static str,
        ok: bool,
    },
    /// An RPC left a caller. `from` is ClientId(0) for server-originated
    /// callbacks.
    RpcCall {
        from: ClientId,
        xid: u64,
        proc: NfsProc,
        fh: Option<FileHandle>,
        offset: u64,
        len: u64,
    },
    RpcReply {
        from: ClientId,
        xid: u64,
        proc: NfsProc,
        ok: bool,
    },
    /// One attempt's request datagram left the caller for the wire
    /// (members of a compound batch share their flush instant). Parented
    /// under the `rpc_call` event; the gap from `rpc_call` to the first
    /// `rpc_xmit` is client-side hold time (marshalling, batcher queue,
    /// injected fault delay).
    RpcXmit { from: ClientId, xid: u64 },
    /// The request datagram reached the server endpoint. `dup` is true
    /// when the duplicate cache answered (or joined an execution already
    /// in flight) instead of spawning a new handler. Parented under the
    /// `rpc_call` event; the gap from a non-dup `rpc_arrive` to its
    /// `handler_begin` is admission wait (blocking gate + service
    /// thread).
    RpcArrive { from: ClientId, xid: u64, dup: bool },
    /// Server-side execution of one RPC (after dup-cache / thread gate).
    HandlerBegin {
        from: ClientId,
        xid: u64,
        proc: NfsProc,
    },
    HandlerEnd {
        from: ClientId,
        xid: u64,
        proc: NfsProc,
        ok: bool,
    },
    /// A server state-table transition for one file.
    Transition {
        fh: FileHandle,
        cause: Cause,
        client: ClientId,
        from: FState,
        to: FState,
        version: u64,
    },
    /// The server started a consistency callback to `target`.
    CallbackBegin {
        target: ClientId,
        fh: FileHandle,
        writeback: bool,
        invalidate: bool,
    },
    CallbackEnd {
        target: ClientId,
        fh: FileHandle,
        ok: bool,
    },
    /// A client began flushing a file's dirty blocks (write-behind pool
    /// or the direct callback path).
    FlushBegin {
        client: ClientId,
        fh: FileHandle,
        direct: bool,
    },
    FlushEnd {
        client: ClientId,
        fh: FileHandle,
        ok: bool,
    },
    /// A block became dirty in a client cache (delayed write).
    BlockDirty {
        client: ClientId,
        fh: FileHandle,
        blk: u64,
    },
    /// A read was served from the client cache at `version`.
    CacheRead {
        client: ClientId,
        fh: FileHandle,
        version: u64,
    },
    /// The server granted an open; records the consistency decision.
    OpenGrant {
        client: ClientId,
        fh: FileHandle,
        version: u64,
        prev_version: u64,
        cache_enabled: bool,
        write: bool,
    },
    /// The client discarded its cached copy (callback or reopen miss).
    Invalidate { client: ClientId, fh: FileHandle },
    /// Delayed writes were cancelled, not flushed (file removed or
    /// truncated): blocks at indices >= `from_blk` are gone.
    WriteCancel {
        client: ClientId,
        fh: FileHandle,
        from_blk: u64,
        blocks: u64,
    },
    /// fsync returned OK to the application.
    FsyncOk { client: ClientId, fh: FileHandle },
    /// The server crashed, losing its state table.
    ServerCrash,
    /// A request entered a disk's scheduler queue. `req` is a per-disk
    /// monotone id; `disk` names the device (traces may carry several).
    DiskQueue {
        disk: String,
        req: u64,
        block: u64,
        write: bool,
    },
    /// A disk request finished service: `wait_us` is queue wait (enqueue
    /// to dispatch), `pos_us` the positioning time charged.
    DiskDone {
        disk: String,
        req: u64,
        block: u64,
        write: bool,
        wait_us: u64,
        pos_us: u64,
    },
    /// A server-side block-cache lookup on the read path.
    SrvCacheRead { ino: u64, blk: u64, hit: bool },
    /// One message hit the network: a request, a reply, or a compound
    /// batch. `host` is the sending host id (0 = server-originated).
    NetXmit {
        host: u32,
        to_server: bool,
        bytes: u64,
    },
    /// A batching caller flushed a compound: `count` inner requests
    /// shared one wire exchange. Emitted once for the request flush
    /// (`reply: false`) and once when the combined reply comes back
    /// (`reply: true`); the checker asserts the counts match per
    /// `(from, id)`.
    Batch {
        from: ClientId,
        id: u64,
        count: u64,
        reply: bool,
    },
    /// The fault-injection layer acted on the `(host, to_client)` RPC
    /// link: `kind` is one of `drop`, `dup`, `delay`, `reply_loss`,
    /// `partition`, or `partition_begin`. `xid` is the affected call's
    /// xid when known (0 otherwise). Never emitted when faults are off.
    Fault {
        host: u32,
        to_client: bool,
        xid: u64,
        kind: &'static str,
    },
    /// The server granted `client` a delegation on `fh` piggybacked on an
    /// open reply (DESIGN.md §17).
    DelegGrant {
        client: ClientId,
        fh: FileHandle,
        write: bool,
    },
    /// The server began recalling `client`'s delegation on `fh` because a
    /// conflicting open arrived.
    DelegRecall { client: ClientId, fh: FileHandle },
    /// `client`'s delegation on `fh` ended: returned (and its queued
    /// open-state applied), or revoked after the recall timed out.
    DelegReturn {
        client: ClientId,
        fh: FileHandle,
        revoked: bool,
    },
    /// The client served an open locally from a delegation it holds —
    /// zero RPCs (the whole point of DESIGN.md §17).
    DelegLocalOpen {
        client: ClientId,
        fh: FileHandle,
        write: bool,
    },
    /// Sharded namespace (DESIGN.md §18): shard `shard` served a
    /// root-level name operation it owns under layout epoch `epoch`.
    /// Rule 10 recomputes the owner and flags any mismatch.
    ShardRoute {
        shard: u32,
        name: String,
        epoch: u64,
    },
    /// Sharded namespace: the authority layout recorded an ownership
    /// move at the commit point of a cross-shard rename/link —
    /// `to_name` is now owned by `shard` (and `from_name`, when
    /// non-empty, ceased to exist). Epoch bumps are strictly increasing.
    ShardMove {
        from_name: String,
        to_name: String,
        shard: u32,
        epoch: u64,
    },
    /// Sharded namespace: a cross-shard transaction opened — emitted by
    /// the coordinator only after the participant prepared, so both
    /// names are locked on both shards for the whole Begin→Move window.
    ShardTxBegin {
        txid: u64,
        from_shard: u32,
        to_shard: u32,
        from_name: String,
        to_name: String,
        link: bool,
    },
    /// Sharded namespace: the participant locked the target name and
    /// reported whether an entry by that name existed.
    ShardTxPrepared { txid: u64, existed: bool },
    /// Sharded namespace: the transaction resolved — committed (the
    /// participant acknowledged the cleanup) or aborted.
    ShardTxEnd { txid: u64, committed: bool },
}

struct Inner {
    sim: Sim,
    events: RefCell<Vec<TraceEvent>>,
    next: Cell<u64>,
}

/// A cheaply clonable handle to one run's event log. Components hold a
/// clone and call [`Tracer::emit`]; emission never awaits, never reads
/// wall-clock time, and never consumes randomness, so a traced run is
/// behaviorally identical to an untraced one.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<Inner>,
}

impl Tracer {
    pub fn new(sim: &Sim) -> Self {
        Tracer {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                events: RefCell::new(Vec::new()),
                next: Cell::new(0),
            }),
        }
    }

    /// Record an event; returns its sequence number for use as the
    /// `parent` of causally dependent events.
    pub fn emit(&self, parent: u64, kind: EventKind) -> u64 {
        let seq = self.inner.next.get() + 1;
        self.inner.next.set(seq);
        self.inner.events.borrow_mut().push(TraceEvent {
            seq,
            t_us: self.inner.sim.now().as_micros(),
            parent,
            kind,
        });
        seq
    }

    pub fn meta(&self, key: &'static str, value: impl Into<String>) {
        self.emit(
            0,
            EventKind::Meta {
                key,
                value: value.into(),
            },
        );
    }

    pub fn len(&self) -> usize {
        self.inner.events.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the event log (the tracer remains usable).
    pub fn finish(&self) -> Vec<TraceEvent> {
        self.inner.events.borrow().clone()
    }
}

/// Escape a string for inclusion in a JSON double-quoted literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh(i: u64) -> FileHandle {
        FileHandle::new(1, i, 1)
    }

    #[test]
    fn sequence_numbers_and_parents_link_up() {
        let sim = Sim::new();
        let tr = Tracer::new(&sim);
        let a = tr.emit(
            0,
            EventKind::OpBegin {
                client: ClientId(1),
                op: "open",
                fh: fh(9),
            },
        );
        let b = tr.emit(
            a,
            EventKind::RpcCall {
                from: ClientId(1),
                xid: 1,
                proc: NfsProc::Open,
                fh: Some(fh(9)),
                offset: 0,
                len: 0,
            },
        );
        let ev = tr.finish();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].seq, a);
        assert_eq!(ev[1].seq, b);
        assert_eq!(ev[1].parent, a);
    }

    #[test]
    fn emission_is_deterministic_under_clone() {
        let sim = Sim::new();
        let tr = Tracer::new(&sim);
        let tr2 = tr.clone();
        tr.meta("protocol", "snfs");
        tr2.meta("seed", "42");
        assert_eq!(tr.len(), 2);
        let ev = tr2.finish();
        assert_eq!(ev[0].seq, 1);
        assert_eq!(ev[1].seq, 2);
    }
}
