//! Causal latency profiling: where did every microsecond of each
//! client-visible operation go?
//!
//! [`profile_trace`] replays a recorded trace and rebuilds one span tree
//! per client-visible op (`op_begin` → `rpc_call` → `rpc_xmit` →
//! `rpc_arrive` → `handler_begin`/`end` → `disk_queue`/`disk_done` →
//! `callback_begin`/`end` → `rpc_reply` → `op_end`, linked by `parent`),
//! then attributes the op's entire wall-clock interval to a fixed set of
//! [`Phase`]s. Attribution is *exact by construction*: every op is
//! partitioned into non-overlapping intervals whose durations sum to the
//! op's latency, so "where does the time go" tables always add up.
//!
//! The profiler is pure post-processing — it runs after the simulation
//! finishes, on the event log alone, so profiling can never perturb a
//! traced run (the determinism tests pin this).
//!
//! ## Attribution model
//!
//! Each op owns the interval `[op_begin.t, op_end.t]`. Instants where no
//! child RPC is outstanding are [`Phase::CacheLocal`] — client CPU,
//! cache hits, block shuffling. While one or more child RPCs are
//! outstanding, each instant is charged to the *earliest-issued* RPC
//! still in flight (ties broken by sequence number), and that RPC's own
//! timeline decides the phase:
//!
//! * `rpc_call` → first `rpc_xmit`: [`Phase::ClientQueue`] (marshalling,
//!   batcher hold, injected fault delay);
//! * `rpc_xmit` → `rpc_arrive`: [`Phase::Net`] (request transit), and
//!   likewise `handler_end` → `rpc_reply` for the reply leg;
//! * fresh `rpc_arrive` → `handler_begin`: [`Phase::Admission`]
//!   (blocking gate + service-thread wait);
//! * duplicate `rpc_arrive` → next boundary: [`Phase::DupCache`] (the
//!   dup cache answered or joined an execution already in flight);
//! * inside `handler_begin..handler_end`: [`Phase::ServerCpu`], except
//!   intervals covered by a consistency callback
//!   ([`Phase::Callback`]) or by a disk request's queue wait
//!   ([`Phase::DiskQueue`]) / service time ([`Phase::DiskService`]).
//!
//! RPCs recorded before the `rpc_xmit`/`rpc_arrive` boundary events
//! existed (older traces) fall back to [`Phase::Unattributed`]; the
//! acceptance gate keeps that under 1% on current traces.
//!
//! Disk events carry no causal parent (the block layer predates the
//! span model), so each server-disk request is assigned to the
//! innermost handler open at its enqueue instant — a deterministic
//! seq-containment heuristic, documented as such in DESIGN.md §16.
//! Misassignment can shift time between server-side phases of
//! concurrent handlers but never breaks the exact-sum property.

use std::collections::HashMap;

use spritely_metrics::{GaugeSeries, LatencyStats};
use spritely_proto::NfsProc;
use spritely_sim::{SimDuration, SimTime};

use crate::{EventKind, TraceEvent};

/// Default occupancy bucket width: one sim-second.
pub const DEFAULT_BUCKET_US: u64 = 1_000_000;

/// The phases every microsecond of a client-visible op is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Client-side time with no RPC outstanding: cache hits, block
    /// copies, think time inside the op.
    CacheLocal,
    /// An RPC was issued but has not left the client yet: marshalling,
    /// batcher hold, injected send delay.
    ClientQueue,
    /// Wire transit, either direction.
    Net,
    /// Request arrived at the server but no handler is running yet:
    /// blocking gate plus service-thread wait.
    Admission,
    /// The duplicate cache answered (or joined an in-flight execution)
    /// instead of spawning a handler.
    DupCache,
    /// Handler execution not covered by disk or callback intervals.
    ServerCpu,
    /// A disk request sat in the scheduler queue during the handler.
    DiskQueue,
    /// A disk request was in service (positioning + transfer).
    DiskService,
    /// The handler was blocked on a consistency callback to a client.
    Callback,
    /// Op time the replay could not attribute (RPCs recorded without
    /// transmit boundaries); should be ~0 on current traces.
    Unattributed,
}

/// Number of phases; array-index domain for per-phase accumulators.
pub const NUM_PHASES: usize = 10;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::CacheLocal,
        Phase::ClientQueue,
        Phase::Net,
        Phase::Admission,
        Phase::DupCache,
        Phase::ServerCpu,
        Phase::DiskQueue,
        Phase::DiskService,
        Phase::Callback,
        Phase::Unattributed,
    ];

    /// Stable snake_case name (used in JSON artifacts and tables).
    pub fn name(self) -> &'static str {
        match self {
            Phase::CacheLocal => "cache_local",
            Phase::ClientQueue => "client_queue",
            Phase::Net => "net",
            Phase::Admission => "admission",
            Phase::DupCache => "dup_cache",
            Phase::ServerCpu => "server_cpu",
            Phase::DiskQueue => "disk_queue",
            Phase::DiskService => "disk_service",
            Phase::Callback => "callback",
            Phase::Unattributed => "unattributed",
        }
    }

    fn index(self) -> usize {
        Phase::ALL
            .iter()
            .position(|&p| p == self)
            .expect("Phase::ALL covers every phase")
    }
}

/// One reconstructed client-visible operation and its phase breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Op name (`open`, `close`, `fsync`, …); synthetic spans built for
    /// RPCs outside any op carry the procedure name instead.
    pub op: &'static str,
    /// Issuing client (0 for server-originated synthetic spans).
    pub client: u32,
    /// `true` for synthetic spans: RPCs whose parent chain reaches no
    /// `op_begin` (background flushes, bare NFS client calls).
    pub synthetic: bool,
    /// Op interval, microseconds of sim time.
    pub begin_us: u64,
    /// End of the op interval.
    pub end_us: u64,
    /// Child RPCs claimed by this span.
    pub rpcs: u64,
    /// Exact partition of `[begin_us, end_us]`, indexed by
    /// [`Phase::ALL`] order; sums to `end_us - begin_us`.
    pub phase_us: [u64; NUM_PHASES],
}

impl OpProfile {
    /// Op wall-clock latency in microseconds.
    pub fn total_us(&self) -> u64 {
        self.end_us - self.begin_us
    }

    /// Microseconds attributed to a named (non-unattributed) phase.
    pub fn attributed_us(&self) -> u64 {
        self.total_us() - self.phase_us[Phase::Unattributed.index()]
    }
}

/// Aggregate phase breakdown for one op name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpKindProfile {
    pub op: &'static str,
    pub count: u64,
    pub total_us: u64,
    pub max_us: u64,
    pub phase_us: [u64; NUM_PHASES],
}

/// How each `rpc_call` in the trace was claimed; the four counts sum to
/// the total number of `rpc_call` events, and every RPC is counted in
/// exactly one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RpcClaims {
    /// Client RPCs whose parent chain reaches an `op_begin`.
    pub op: u64,
    /// Server-originated callback RPCs issued inside a handler.
    pub callback: u64,
    /// RPCs outside any op (background flush daemons, bare NFS client
    /// calls): each becomes its own synthetic span.
    pub background: u64,
    /// RPCs with no `rpc_reply` in the trace (in flight at trace end or
    /// permanently lost); claimed but not profiled as spans.
    pub incomplete: u64,
}

impl RpcClaims {
    pub fn total(&self) -> u64 {
        self.op + self.callback + self.background + self.incomplete
    }
}

/// The full profile of one traced run.
pub struct Profile {
    /// Every reconstructed span (real ops first, then synthetic, in
    /// trace order within each group).
    pub ops: Vec<OpProfile>,
    /// Per-op-name aggregates, in first-appearance order.
    pub op_kinds: Vec<OpKindProfile>,
    /// Phase totals across all spans, indexed by [`Phase::ALL`] order.
    pub phase_us: [u64; NUM_PHASES],
    /// Sum of span wall-clock latencies.
    pub total_us: u64,
    /// How every `rpc_call` was claimed.
    pub claims: RpcClaims,
    /// `rpc_call` events in the trace (== `claims.total()`).
    pub total_rpcs: u64,
    /// Per-procedure end-to-end RPC latency (`rpc_call` → `rpc_reply`).
    pub rpc_latency: LatencyStats,
    /// Occupancy bucket width, microseconds.
    pub bucket_us: u64,
    /// Attributed microseconds per `[bucket][phase]`; bucket `i` covers
    /// sim time `[i*bucket_us, (i+1)*bucket_us)`.
    pub occupancy: Vec<[u64; NUM_PHASES]>,
}

impl Profile {
    /// Microseconds attributed to `phase` across all spans.
    pub fn phase_total(&self, phase: Phase) -> u64 {
        self.phase_us[phase.index()]
    }

    /// Fraction of all span time attributed to named phases (1.0 means
    /// nothing fell in [`Phase::Unattributed`]).
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_us == 0 {
            return 1.0;
        }
        let un = self.phase_us[Phase::Unattributed.index()];
        (self.total_us - un) as f64 / self.total_us as f64
    }

    /// Worst per-span attributed fraction across spans with nonzero
    /// latency (the acceptance gate bounds this, not just the mean).
    pub fn min_op_attributed_fraction(&self) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.total_us() > 0)
            .map(|o| o.attributed_us() as f64 / o.total_us() as f64)
            .fold(1.0, f64::min)
    }

    /// Sim-time series of each phase's occupancy (attributed seconds per
    /// second of sim time), one [`GaugeSeries`] per phase in
    /// [`Phase::ALL`] order. A value above 1.0 means several spans were
    /// concurrently in that phase.
    pub fn phase_gauges(&self) -> Vec<(Phase, GaugeSeries)> {
        Phase::ALL
            .iter()
            .map(|&p| {
                let g = GaugeSeries::new();
                for (i, bucket) in self.occupancy.iter().enumerate() {
                    let t = SimTime::from_micros((i as u64 + 1) * self.bucket_us);
                    g.push(t, bucket[p.index()] as f64 / self.bucket_us as f64);
                }
                (p, g)
            })
            .collect()
    }

    /// Byte-stable JSON rendering (deterministic runs produce identical
    /// bytes; committed under `artifacts/` and diffed by
    /// `spritely compare`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("{\n");
        let _ = write!(
            s,
            "  \"ops\": {},\n  \"rpcs\": {},\n",
            self.ops.len(),
            self.total_rpcs
        );
        let _ = write!(
            s,
            "  \"claims\": {{\"op\": {}, \"callback\": {}, \"background\": {}, \"incomplete\": {}}},",
            self.claims.op, self.claims.callback, self.claims.background, self.claims.incomplete
        );
        s.push('\n');
        let _ = write!(
            s,
            "  \"total_op_us\": {},\n  \"attributed_us\": {},\n",
            self.total_us,
            self.total_us - self.phase_us[Phase::Unattributed.index()]
        );
        s.push_str("  \"phase_us\": {");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": {}", p.name(), self.phase_us[p.index()]);
        }
        s.push_str("},\n  \"op_kinds\": [\n");
        for (i, k) in self.op_kinds.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"op\": \"{}\", \"count\": {}, \"total_us\": {}, \"max_us\": {}, \"phase_us\": {{",
                crate::json_escape(k.op),
                k.count,
                k.total_us,
                k.max_us
            );
            for (j, p) in Phase::ALL.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\": {}", p.name(), k.phase_us[p.index()]);
            }
            s.push_str("}}");
            if i + 1 < self.op_kinds.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n  \"procs\": [\n");
        let observed = self.rpc_latency.observed();
        for (i, &p) in observed.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"proc\": \"{}\", \"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                p.name(),
                self.rpc_latency.count(p),
                self.rpc_latency.mean(p).as_micros(),
                self.rpc_latency.percentile(p, 0.50).as_micros(),
                self.rpc_latency.percentile(p, 0.95).as_micros(),
                self.rpc_latency.percentile(p, 0.99).as_micros(),
                self.rpc_latency.max(p).as_micros()
            );
            if i + 1 < observed.len() {
                s.push(',');
            }
            s.push('\n');
        }
        let _ = write!(
            s,
            "  ],\n  \"occupancy\": {{\"bucket_us\": {}, \"buckets\": {}, \"phases\": {{",
            self.bucket_us,
            self.occupancy.len()
        );
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": [", p.name());
            for (j, b) in self.occupancy.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{}", b[p.index()]);
            }
            s.push(']');
        }
        s.push_str("}}\n}\n");
        s
    }
}

/// One RPC's reconstructed timeline.
struct Rpc {
    seq: u64,
    from: u32,
    proc: NfsProc,
    t_call: u64,
    t_reply: Option<u64>,
    /// Owning `op_begin` seq, if the parent chain reaches one.
    owner: Option<u64>,
    /// Phase boundaries in emission (= time) order.
    bounds: Vec<(u64, Bound)>,
}

enum Bound {
    Xmit,
    Arrive { dup: bool },
    HandlerBegin { h: u64 },
    HandlerEnd,
}

/// One server handler execution's sub-interval overlay: painted
/// `(start, end, phase)` intervals. Priority when probing is encoded in
/// [`subdivide_handler`].
struct Handler {
    subs: Vec<(u64, u64, Phase)>,
}

/// A contiguous slice of one RPC's timeline, already resolved to a
/// phase (handler intervals are resolved via the handler overlay).
struct Segment {
    start: u64,
    end: u64,
    phase: Phase,
}

/// Replay `events` and build the full phase-attribution profile, with
/// occupancy bucketed at `bucket` width.
pub fn profile_trace_bucketed(events: &[TraceEvent], bucket: SimDuration) -> Profile {
    Profiler::new(events).run(bucket.as_micros().max(1))
}

/// Replay `events` with the default one-second occupancy bucket.
pub fn profile_trace(events: &[TraceEvent]) -> Profile {
    profile_trace_bucketed(events, SimDuration::from_micros(DEFAULT_BUCKET_US))
}

struct Profiler<'a> {
    events: &'a [TraceEvent],
    /// Owning `op_begin` seq per event (by index), via the parent chain.
    owner: Vec<Option<u64>>,
    /// Nearest ancestor `handler_begin` seq per event (by index).
    handler_of: Vec<Option<u64>>,
}

impl<'a> Profiler<'a> {
    fn new(events: &'a [TraceEvent]) -> Self {
        let mut idx_of = HashMap::with_capacity(events.len());
        for (i, e) in events.iter().enumerate() {
            idx_of.insert(e.seq, i);
        }
        // Parents are always emitted before children (sequence numbers
        // are assigned in emission order), so one forward pass resolves
        // both ancestor maps.
        let mut owner: Vec<Option<u64>> = vec![None; events.len()];
        let mut handler_of: Vec<Option<u64>> = vec![None; events.len()];
        for i in 0..events.len() {
            let e = &events[i];
            let parent_idx = if e.parent == 0 {
                None
            } else {
                idx_of.get(&e.parent).copied()
            };
            owner[i] = match e.kind {
                EventKind::OpBegin { .. } => Some(e.seq),
                _ => parent_idx.and_then(|pi| owner[pi]),
            };
            handler_of[i] = match e.kind {
                EventKind::HandlerBegin { .. } => Some(e.seq),
                _ => parent_idx.and_then(|pi| handler_of[pi]),
            };
        }
        Profiler {
            events,
            owner,
            handler_of,
        }
    }

    fn run(&self, bucket_us: u64) -> Profile {
        // ---- Pass 1: collect ops, RPCs, handlers, callbacks, disk. ----
        let mut op_meta: Vec<(u64, u64, u32, &'static str)> = Vec::new(); // (seq, t0, client, op)
        let mut op_end: HashMap<u64, u64> = HashMap::new(); // op seq -> t1
        let mut rpcs: Vec<Rpc> = Vec::new();
        let mut rpc_idx: HashMap<u64, usize> = HashMap::new(); // rpc seq -> rpcs index
        let mut handlers: HashMap<u64, Handler> = HashMap::new();
        let mut handler_rpc: HashMap<u64, usize> = HashMap::new(); // handler seq -> rpcs index
                                                                   // Server handlers open at the current scan point, in begin order
                                                                   // (for the disk seq-containment heuristic).
        let mut open_server_handlers: Vec<u64> = Vec::new();
        // (disk name, req id) -> (enqueue t, assigned handler)
        let mut disk_pending: HashMap<(&str, u64), (u64, Option<u64>)> = HashMap::new();
        let mut cb_begin: Vec<(u64, u64, usize)> = Vec::new(); // (cb seq, t, event idx)
        let mut cb_end: HashMap<u64, u64> = HashMap::new(); // cb seq -> t

        for (i, e) in self.events.iter().enumerate() {
            match &e.kind {
                EventKind::OpBegin { client, op, .. } => {
                    op_meta.push((e.seq, e.t_us, client.0, op));
                }
                EventKind::OpEnd { .. } => {
                    op_end.insert(e.parent, e.t_us);
                }
                EventKind::RpcCall { from, proc, .. } => {
                    rpc_idx.insert(e.seq, rpcs.len());
                    rpcs.push(Rpc {
                        seq: e.seq,
                        from: from.0,
                        proc: *proc,
                        t_call: e.t_us,
                        t_reply: None,
                        owner: self.owner[i],
                        bounds: Vec::new(),
                    });
                }
                EventKind::RpcReply { .. } => {
                    if let Some(&ri) = rpc_idx.get(&e.parent) {
                        rpcs[ri].t_reply = Some(e.t_us);
                    }
                }
                EventKind::RpcXmit { .. } => {
                    if let Some(&ri) = rpc_idx.get(&e.parent) {
                        rpcs[ri].bounds.push((e.t_us, Bound::Xmit));
                    }
                }
                EventKind::RpcArrive { dup, .. } => {
                    if let Some(&ri) = rpc_idx.get(&e.parent) {
                        rpcs[ri].bounds.push((e.t_us, Bound::Arrive { dup: *dup }));
                    }
                }
                EventKind::HandlerBegin { from, .. } => {
                    handlers.insert(e.seq, Handler { subs: Vec::new() });
                    if let Some(&ri) = rpc_idx.get(&e.parent) {
                        handler_rpc.insert(e.seq, ri);
                        rpcs[ri]
                            .bounds
                            .push((e.t_us, Bound::HandlerBegin { h: e.seq }));
                    }
                    if from.0 != 0 {
                        open_server_handlers.push(e.seq);
                    }
                }
                // `handler_end` is parented under its `handler_begin`,
                // not the RPC — route it back via the handler map.
                EventKind::HandlerEnd { .. } => {
                    if let Some(&ri) = handler_rpc.get(&e.parent) {
                        rpcs[ri].bounds.push((e.t_us, Bound::HandlerEnd));
                    }
                    open_server_handlers.retain(|&h| h != e.parent);
                }
                EventKind::DiskQueue { disk, req, .. } => {
                    // Seq-containment heuristic: charge the disk request
                    // to the most recently begun server handler still
                    // open at enqueue time. Only server-originated
                    // executions count; callback handlers running on
                    // client hosts never issue server-disk I/O.
                    let h = open_server_handlers.last().copied();
                    disk_pending.insert((disk.as_str(), *req), (e.t_us, h));
                }
                EventKind::DiskDone {
                    disk, req, wait_us, ..
                } => {
                    if let Some((t_q, Some(h))) = disk_pending.remove(&(disk.as_str(), *req)) {
                        if let Some(handler) = handlers.get_mut(&h) {
                            let dispatch = (t_q + wait_us).min(e.t_us);
                            if dispatch > t_q {
                                handler.subs.push((t_q, dispatch, Phase::DiskQueue));
                            }
                            if e.t_us > dispatch {
                                handler.subs.push((dispatch, e.t_us, Phase::DiskService));
                            }
                        }
                    }
                }
                EventKind::CallbackBegin { .. } => {
                    cb_begin.push((e.seq, e.t_us, i));
                }
                EventKind::CallbackEnd { .. } => {
                    cb_end.insert(e.parent, e.t_us);
                }
                _ => {}
            }
        }

        // Paint callback intervals onto their owning handlers.
        for &(cb_seq, t_b, idx) in &cb_begin {
            let Some(h) = self.handler_of[idx] else {
                continue;
            };
            let Some(&t_e) = cb_end.get(&cb_seq) else {
                continue;
            };
            if let Some(handler) = handlers.get_mut(&h) {
                if t_e > t_b {
                    handler.subs.push((t_b, t_e, Phase::Callback));
                }
            }
        }

        // ---- Pass 2: resolve each RPC to plain phase segments. ----
        let rpc_segments: Vec<Vec<Segment>> =
            rpcs.iter().map(|r| resolve_rpc(r, &handlers)).collect();

        // ---- Pass 3: overlay RPC segments onto op intervals. ----
        let mut claims = RpcClaims::default();
        let mut ops: Vec<OpProfile> = Vec::new();
        // op seq -> indices into `rpcs` of its client-side children.
        let mut op_children: HashMap<u64, Vec<usize>> = HashMap::new();
        for (ri, r) in rpcs.iter().enumerate() {
            match (r.owner, r.from, r.t_reply) {
                (_, _, None) => claims.incomplete += 1,
                (Some(op), from, Some(_)) if from != 0 => {
                    claims.op += 1;
                    op_children.entry(op).or_default().push(ri);
                }
                (Some(_), _, Some(_)) => claims.callback += 1,
                (None, _, Some(_)) => claims.background += 1,
            }
        }

        let mut occupancy: Vec<[u64; NUM_PHASES]> = Vec::new();
        for &(op_seq, t0, client, name) in &op_meta {
            let Some(&t1) = op_end.get(&op_seq) else {
                continue;
            };
            let children = op_children.remove(&op_seq).unwrap_or_default();
            let rpc_count = children.len() as u64;
            let phase_us = overlay_op(
                t0,
                t1,
                &children,
                &rpcs,
                &rpc_segments,
                bucket_us,
                &mut occupancy,
            );
            ops.push(OpProfile {
                op: name,
                client,
                synthetic: false,
                begin_us: t0,
                end_us: t1,
                rpcs: rpc_count,
                phase_us,
            });
        }

        // Synthetic spans: background / bare-client RPCs, one span each.
        for (ri, r) in rpcs.iter().enumerate() {
            if r.owner.is_some() || r.from == 0 {
                continue;
            }
            let Some(t_reply) = r.t_reply else { continue };
            let phase_us = overlay_op(
                r.t_call,
                t_reply,
                &[ri],
                &rpcs,
                &rpc_segments,
                bucket_us,
                &mut occupancy,
            );
            ops.push(OpProfile {
                op: r.proc.name(),
                client: r.from,
                synthetic: true,
                begin_us: r.t_call,
                end_us: t_reply,
                rpcs: 1,
                phase_us,
            });
        }

        // ---- Aggregates. ----
        let mut phase_us = [0u64; NUM_PHASES];
        let mut total_us = 0u64;
        let mut op_kinds: Vec<OpKindProfile> = Vec::new();
        for o in &ops {
            total_us += o.total_us();
            for (acc, v) in phase_us.iter_mut().zip(o.phase_us.iter()) {
                *acc += v;
            }
            match op_kinds.iter_mut().find(|k| k.op == o.op) {
                Some(k) => {
                    k.count += 1;
                    k.total_us += o.total_us();
                    k.max_us = k.max_us.max(o.total_us());
                    for i in 0..NUM_PHASES {
                        k.phase_us[i] += o.phase_us[i];
                    }
                }
                None => op_kinds.push(OpKindProfile {
                    op: o.op,
                    count: 1,
                    total_us: o.total_us(),
                    max_us: o.total_us(),
                    phase_us: o.phase_us,
                }),
            }
        }

        let rpc_latency = LatencyStats::new();
        for r in &rpcs {
            if let Some(t_reply) = r.t_reply {
                rpc_latency.record(r.proc, SimDuration::from_micros(t_reply - r.t_call));
            }
        }

        Profile {
            ops,
            op_kinds,
            phase_us,
            total_us,
            total_rpcs: rpcs.len() as u64,
            claims,
            rpc_latency,
            bucket_us,
            occupancy,
        }
    }
}

/// Turn one RPC's boundary list into contiguous phase segments covering
/// `[t_call, t_reply]` exactly. Handler intervals are subdivided by the
/// handler's painted overlay (disk service > disk queue > callback >
/// server CPU).
fn resolve_rpc(r: &Rpc, handlers: &HashMap<u64, Handler>) -> Vec<Segment> {
    let Some(t_reply) = r.t_reply else {
        return Vec::new();
    };
    let has_xmit = r.bounds.iter().any(|(_, b)| matches!(b, Bound::Xmit));
    let mut segs: Vec<Segment> = Vec::new();
    let mut cur_t = r.t_call;
    // State carried between boundaries: either a plain phase or an open
    // handler whose overlay subdivides the interval.
    enum State {
        Plain(Phase),
        InHandler(u64),
    }
    let mut state = State::Plain(if has_xmit {
        Phase::ClientQueue
    } else {
        Phase::Unattributed
    });
    let close = |segs: &mut Vec<Segment>, state: &State, a: u64, b: u64| {
        if b <= a {
            return;
        }
        match state {
            State::Plain(p) => segs.push(Segment {
                start: a,
                end: b,
                phase: *p,
            }),
            State::InHandler(h) => subdivide_handler(segs, handlers.get(h), a, b),
        }
    };
    for (t, b) in &r.bounds {
        let t = (*t).min(t_reply);
        close(&mut segs, &state, cur_t, t);
        cur_t = cur_t.max(t);
        state = match b {
            Bound::Xmit => State::Plain(Phase::Net),
            Bound::Arrive { dup: false } => State::Plain(Phase::Admission),
            Bound::Arrive { dup: true } => State::Plain(Phase::DupCache),
            Bound::HandlerBegin { h } => State::InHandler(*h),
            Bound::HandlerEnd => State::Plain(Phase::Net),
        };
    }
    close(&mut segs, &state, cur_t, t_reply);
    segs
}

/// Split `[a, b]` of a handler execution into phase segments using the
/// handler's painted sub-intervals. Priority when intervals overlap:
/// disk service, then disk queue, then callback, then server CPU.
fn subdivide_handler(segs: &mut Vec<Segment>, handler: Option<&Handler>, a: u64, b: u64) {
    let Some(h) = handler else {
        segs.push(Segment {
            start: a,
            end: b,
            phase: Phase::ServerCpu,
        });
        return;
    };
    // Breakpoints: interval ends plus every painted edge inside it.
    let mut cuts: Vec<u64> = vec![a, b];
    for &(s, e, _) in &h.subs {
        for t in [s, e] {
            if t > a && t < b {
                cuts.push(t);
            }
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mid = lo; // phases are constant on [lo, hi); probe the start
        let covered = |p: Phase| {
            h.subs
                .iter()
                .any(|&(s, e, q)| q == p && s <= mid && e > mid)
        };
        let phase = if covered(Phase::DiskService) {
            Phase::DiskService
        } else if covered(Phase::DiskQueue) {
            Phase::DiskQueue
        } else if covered(Phase::Callback) {
            Phase::Callback
        } else {
            Phase::ServerCpu
        };
        // Coalesce with the previous segment when the phase repeats.
        match segs.last_mut() {
            Some(last) if last.end == lo && last.phase == phase => last.end = hi,
            _ => segs.push(Segment {
                start: lo,
                end: hi,
                phase,
            }),
        }
    }
}

/// Partition the span `[t0, t1]` across phases given its child RPCs'
/// resolved segments, accumulating into `occupancy` buckets as well.
/// Returns the exact per-phase breakdown (sums to `t1 - t0`).
fn overlay_op(
    t0: u64,
    t1: u64,
    children: &[usize],
    rpcs: &[Rpc],
    rpc_segments: &[Vec<Segment>],
    bucket_us: u64,
    occupancy: &mut Vec<[u64; NUM_PHASES]>,
) -> [u64; NUM_PHASES] {
    let mut phase_us = [0u64; NUM_PHASES];
    if t1 <= t0 {
        return phase_us;
    }
    // Instants where the attribution can change: span ends plus every
    // child segment edge (clipped to the span).
    let mut cuts: Vec<u64> = vec![t0, t1];
    for &ri in children {
        for s in &rpc_segments[ri] {
            for t in [s.start, s.end] {
                if t > t0 && t < t1 {
                    cuts.push(t);
                }
            }
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        // Charge [lo, hi) to the earliest-issued RPC active at `lo`
        // (ties by sequence number), or cache-local when none is.
        let mut chosen: Option<(u64, u64, Phase)> = None; // (t_call, seq, phase)
        for &ri in children {
            let r = &rpcs[ri];
            let Some(seg) = rpc_segments[ri]
                .iter()
                .find(|s| s.start <= lo && s.end > lo)
            else {
                continue;
            };
            let key = (r.t_call, r.seq);
            if chosen.is_none_or(|(tc, sq, _)| key < (tc, sq)) {
                chosen = Some((r.t_call, r.seq, seg.phase));
            }
        }
        let phase = chosen.map_or(Phase::CacheLocal, |(_, _, p)| p);
        phase_us[phase.index()] += hi - lo;
        add_occupancy(occupancy, bucket_us, lo, hi, phase);
    }
    phase_us
}

/// Spread `[lo, hi)` attributed to `phase` across fixed-width buckets.
fn add_occupancy(
    occupancy: &mut Vec<[u64; NUM_PHASES]>,
    bucket_us: u64,
    lo: u64,
    hi: u64,
    phase: Phase,
) {
    let mut t = lo;
    while t < hi {
        let b = (t / bucket_us) as usize;
        let edge = ((b as u64) + 1) * bucket_us;
        let end = hi.min(edge);
        if occupancy.len() <= b {
            occupancy.resize(b + 1, [0u64; NUM_PHASES]);
        }
        occupancy[b][phase.index()] += end - t;
        t = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spritely_proto::{ClientId, FileHandle};

    fn ev(seq: u64, t_us: u64, parent: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            t_us,
            parent,
            kind,
        }
    }

    fn fh() -> FileHandle {
        FileHandle::new(1, 7, 1)
    }

    /// One op with one fully-boundary-annotated RPC: every phase lands
    /// where the timeline says, and the partition is exact.
    #[test]
    fn single_rpc_attribution_is_exact() {
        let c = ClientId(1);
        let events = vec![
            ev(
                1,
                0,
                0,
                EventKind::OpBegin {
                    client: c,
                    op: "open",
                    fh: fh(),
                },
            ),
            ev(
                2,
                100,
                1,
                EventKind::RpcCall {
                    from: c,
                    xid: 1,
                    proc: NfsProc::Open,
                    fh: Some(fh()),
                    offset: 0,
                    len: 0,
                },
            ),
            ev(3, 150, 2, EventKind::RpcXmit { from: c, xid: 1 }),
            ev(
                4,
                250,
                2,
                EventKind::RpcArrive {
                    from: c,
                    xid: 1,
                    dup: false,
                },
            ),
            ev(
                5,
                300,
                2,
                EventKind::HandlerBegin {
                    from: c,
                    xid: 1,
                    proc: NfsProc::Open,
                },
            ),
            ev(
                6,
                700,
                5,
                EventKind::HandlerEnd {
                    from: c,
                    xid: 1,
                    proc: NfsProc::Open,
                    ok: true,
                },
            ),
            ev(
                7,
                800,
                2,
                EventKind::RpcReply {
                    from: c,
                    xid: 1,
                    proc: NfsProc::Open,
                    ok: true,
                },
            ),
            ev(
                8,
                900,
                1,
                EventKind::OpEnd {
                    client: c,
                    op: "open",
                    ok: true,
                },
            ),
        ];
        let p = profile_trace(&events);
        assert_eq!(p.ops.len(), 1);
        let o = &p.ops[0];
        assert_eq!(o.total_us(), 900);
        assert_eq!(o.phase_us.iter().sum::<u64>(), 900);
        assert_eq!(o.phase_us[Phase::CacheLocal.index()], 200); // 0-100, 800-900
        assert_eq!(o.phase_us[Phase::ClientQueue.index()], 50); // 100-150
        assert_eq!(o.phase_us[Phase::Net.index()], 200); // 150-250, 700-800
        assert_eq!(o.phase_us[Phase::Admission.index()], 50); // 250-300
        assert_eq!(o.phase_us[Phase::ServerCpu.index()], 400); // 300-700
        assert_eq!(o.phase_us[Phase::Unattributed.index()], 0);
        assert_eq!(p.claims.op, 1);
        assert_eq!(p.claims.total(), 1);
        assert!((p.attributed_fraction() - 1.0).abs() < 1e-12);
    }

    /// Disk and callback intervals subdivide handler time.
    #[test]
    fn handler_overlay_splits_disk_and_callback() {
        let c = ClientId(1);
        let events = vec![
            ev(
                1,
                0,
                0,
                EventKind::OpBegin {
                    client: c,
                    op: "close",
                    fh: fh(),
                },
            ),
            ev(
                2,
                0,
                1,
                EventKind::RpcCall {
                    from: c,
                    xid: 1,
                    proc: NfsProc::Close,
                    fh: Some(fh()),
                    offset: 0,
                    len: 0,
                },
            ),
            ev(3, 10, 2, EventKind::RpcXmit { from: c, xid: 1 }),
            ev(
                4,
                20,
                2,
                EventKind::RpcArrive {
                    from: c,
                    xid: 1,
                    dup: false,
                },
            ),
            ev(
                5,
                30,
                2,
                EventKind::HandlerBegin {
                    from: c,
                    xid: 1,
                    proc: NfsProc::Close,
                },
            ),
            // Disk request: queued at 40, waits 20 (dispatch 60), done 100.
            ev(
                6,
                40,
                0,
                EventKind::DiskQueue {
                    disk: "srv".into(),
                    req: 1,
                    block: 5,
                    write: true,
                },
            ),
            ev(
                7,
                100,
                0,
                EventKind::DiskDone {
                    disk: "srv".into(),
                    req: 1,
                    block: 5,
                    write: true,
                    wait_us: 20,
                    pos_us: 10,
                },
            ),
            // Callback from 120 to 180 inside the handler.
            ev(
                8,
                120,
                5,
                EventKind::CallbackBegin {
                    target: ClientId(2),
                    fh: fh(),
                    writeback: true,
                    invalidate: false,
                },
            ),
            ev(
                9,
                180,
                8,
                EventKind::CallbackEnd {
                    target: ClientId(2),
                    fh: fh(),
                    ok: true,
                },
            ),
            ev(
                10,
                200,
                5,
                EventKind::HandlerEnd {
                    from: c,
                    xid: 1,
                    proc: NfsProc::Close,
                    ok: true,
                },
            ),
            ev(
                11,
                210,
                2,
                EventKind::RpcReply {
                    from: c,
                    xid: 1,
                    proc: NfsProc::Close,
                    ok: true,
                },
            ),
            ev(
                12,
                210,
                1,
                EventKind::OpEnd {
                    client: c,
                    op: "close",
                    ok: true,
                },
            ),
        ];
        let p = profile_trace(&events);
        let o = &p.ops[0];
        assert_eq!(o.phase_us.iter().sum::<u64>(), 210);
        assert_eq!(o.phase_us[Phase::DiskQueue.index()], 20); // 40-60
        assert_eq!(o.phase_us[Phase::DiskService.index()], 40); // 60-100
        assert_eq!(o.phase_us[Phase::Callback.index()], 60); // 120-180
                                                             // Handler CPU: 30-40 + 100-120 + 180-200 = 50.
        assert_eq!(o.phase_us[Phase::ServerCpu.index()], 50);
        assert_eq!(o.phase_us[Phase::Unattributed.index()], 0);
    }

    /// An RPC without transmit boundaries (old trace) degrades to
    /// unattributed, not to a panic or a silent misattribution.
    #[test]
    fn boundary_free_rpc_is_unattributed() {
        let c = ClientId(3);
        let events = vec![
            ev(
                1,
                0,
                0,
                EventKind::RpcCall {
                    from: c,
                    xid: 9,
                    proc: NfsProc::Read,
                    fh: None,
                    offset: 0,
                    len: 0,
                },
            ),
            ev(
                2,
                500,
                1,
                EventKind::RpcReply {
                    from: c,
                    xid: 9,
                    proc: NfsProc::Read,
                    ok: true,
                },
            ),
        ];
        let p = profile_trace(&events);
        assert_eq!(p.ops.len(), 1);
        assert!(p.ops[0].synthetic);
        assert_eq!(p.ops[0].op, "read");
        assert_eq!(p.ops[0].phase_us[Phase::Unattributed.index()], 500);
        assert_eq!(p.claims.background, 1);
    }

    /// Overlapping child RPCs: each instant goes to the earliest-issued
    /// active RPC, and the op partition still sums exactly.
    #[test]
    fn concurrent_rpcs_partition_exactly() {
        let c = ClientId(1);
        let mut events = vec![ev(
            1,
            0,
            0,
            EventKind::OpBegin {
                client: c,
                op: "open",
                fh: fh(),
            },
        )];
        // Two RPCs: A spans 10..200, B spans 50..300 (overlap 50..200).
        for (seq, xid, t_call, t_reply) in [(2u64, 1u64, 10u64, 200u64), (6, 2, 50, 300)] {
            events.push(ev(
                seq,
                t_call,
                1,
                EventKind::RpcCall {
                    from: c,
                    xid,
                    proc: NfsProc::Read,
                    fh: None,
                    offset: 0,
                    len: 0,
                },
            ));
            events.push(ev(
                seq + 1,
                t_call + 5,
                seq,
                EventKind::RpcXmit { from: c, xid },
            ));
            events.push(ev(
                seq + 2,
                t_call + 10,
                seq,
                EventKind::RpcArrive {
                    from: c,
                    xid,
                    dup: false,
                },
            ));
            events.push(ev(
                seq + 3,
                t_reply,
                seq,
                EventKind::RpcReply {
                    from: c,
                    xid,
                    proc: NfsProc::Read,
                    ok: true,
                },
            ));
        }
        events.push(ev(
            10,
            400,
            1,
            EventKind::OpEnd {
                client: c,
                op: "open",
                ok: true,
            },
        ));
        // Fix seqs to be strictly increasing in time order.
        events.sort_by_key(|e| (e.t_us, e.seq));
        let p = profile_trace(&events);
        let o = &p.ops[0];
        assert_eq!(o.rpcs, 2);
        assert_eq!(o.phase_us.iter().sum::<u64>(), 400);
        // 0-10 and 300-400 have no RPC outstanding.
        assert_eq!(o.phase_us[Phase::CacheLocal.index()], 110);
        assert_eq!(p.claims.op, 2);
    }

    #[test]
    fn occupancy_buckets_cover_attributed_time() {
        let c = ClientId(1);
        let events = vec![
            ev(
                1,
                0,
                0,
                EventKind::OpBegin {
                    client: c,
                    op: "open",
                    fh: fh(),
                },
            ),
            ev(
                2,
                2_500_000,
                1,
                EventKind::OpEnd {
                    client: c,
                    op: "open",
                    ok: true,
                },
            ),
        ];
        let p = profile_trace(&events);
        assert_eq!(p.occupancy.len(), 3);
        let total: u64 = p
            .occupancy
            .iter()
            .map(|b| b[Phase::CacheLocal.index()])
            .sum();
        assert_eq!(total, 2_500_000);
        assert_eq!(p.occupancy[0][Phase::CacheLocal.index()], 1_000_000);
        assert_eq!(p.occupancy[2][Phase::CacheLocal.index()], 500_000);
        let gauges = p.phase_gauges();
        let (_, cache) = &gauges[Phase::CacheLocal.index()];
        assert_eq!(cache.samples().len(), 3);
        assert!((cache.samples()[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_is_stable_and_self_consistent() {
        let c = ClientId(1);
        let events = vec![
            ev(
                1,
                0,
                0,
                EventKind::OpBegin {
                    client: c,
                    op: "open",
                    fh: fh(),
                },
            ),
            ev(
                2,
                100,
                1,
                EventKind::OpEnd {
                    client: c,
                    op: "open",
                    ok: true,
                },
            ),
        ];
        let a = profile_trace(&events).to_json();
        let b = profile_trace(&events).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"cache_local\": 100"));
        assert!(a.contains("\"ops\": 1"));
    }
}
