//! A simple seek/rotation/transfer disk model.
//!
//! The paper's server used RA81/RA82 drives ("moderately high performance"
//! for 1989). What matters for reproducing the results is not the exact
//! drive geometry but the two properties the paper leans on:
//!
//! 1. **Writes are slow and synchronous at the server** — every NFS `write`
//!    RPC costs a disk access before the reply, so write-through dominates
//!    elapsed time.
//! 2. **Sequential transfers are much cheaper than random ones** — delayed
//!    write-back batches dirty blocks into sequential runs.
//!
//! [`Disk`] models a single arm (FIFO queue) with a positioning time that
//! is charged in full for non-adjacent accesses and a reduced
//! track-to-track time for sequential ones, plus a bytes/rate transfer
//! time. All timing is deterministic.

use std::cell::RefCell;
use std::rc::Rc;

use spritely_sim::{Resource, Sim, SimDuration};

/// Timing parameters for a [`Disk`].
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Average positioning (seek + rotational latency) for a random access.
    pub avg_position: SimDuration,
    /// Positioning charged when the access is sequential to the previous
    /// one (track-to-track / same-track rotation).
    pub seq_position: SimDuration,
    /// Media transfer rate in bytes per second.
    pub transfer_rate: u64,
}

impl DiskParams {
    /// Parameters approximating the paper's RA81 drive: ~28 ms average
    /// positioning, ~2.2 MB/s media rate.
    pub fn ra81() -> Self {
        DiskParams {
            avg_position: SimDuration::from_micros(28_000),
            seq_position: SimDuration::from_micros(2_500),
            transfer_rate: 2_200_000,
        }
    }

    /// Time to transfer `bytes` at the media rate.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.transfer_rate == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros((bytes as u64 * 1_000_000).div_ceil(self.transfer_rate))
    }
}

/// Cumulative statistics for one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

/// A single-arm disk with a FIFO request queue.
#[derive(Clone)]
pub struct Disk {
    sim: Sim,
    arm: Resource,
    params: DiskParams,
    state: Rc<RefCell<DiskState>>,
}

struct DiskState {
    last_block: Option<u64>,
    stats: DiskStats,
}

impl Disk {
    /// Creates a disk attached to `sim`.
    pub fn new(sim: &Sim, name: impl Into<String>, params: DiskParams) -> Self {
        Disk {
            sim: sim.clone(),
            arm: Resource::new(sim, name, 1),
            params,
            state: Rc::new(RefCell::new(DiskState {
                last_block: None,
                stats: DiskStats::default(),
            })),
        }
    }

    /// The disk's timing parameters.
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> DiskStats {
        self.state.borrow().stats
    }

    /// The arm resource (for utilization reporting).
    pub fn arm(&self) -> &Resource {
        &self.arm
    }

    /// Reads `bytes` at `block`, waiting in the FIFO queue and consuming
    /// positioning + transfer time.
    pub async fn read(&self, block: u64, bytes: usize) {
        self.access(block, bytes, false).await;
    }

    /// Writes `bytes` at `block`; same timing as a read (the model does not
    /// distinguish write settle time).
    pub async fn write(&self, block: u64, bytes: usize) {
        self.access(block, bytes, true).await;
    }

    async fn access(&self, block: u64, bytes: usize, is_write: bool) {
        let guard = self.arm.acquire().await;
        let service = {
            let st = self.state.borrow();
            let seq = st.last_block == Some(block.wrapping_sub(1)) || st.last_block == Some(block);
            let pos = if seq {
                self.params.seq_position
            } else {
                self.params.avg_position
            };
            pos + self.params.transfer_time(bytes)
        };
        self.sim.sleep(service).await;
        let mut st = self.state.borrow_mut();
        st.last_block = Some(block);
        if is_write {
            st.stats.writes += 1;
            st.stats.bytes_written += bytes as u64;
        } else {
            st.stats.reads += 1;
            st.stats.bytes_read += bytes as u64;
        }
        drop(st);
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(sim: &Sim) -> Disk {
        Disk::new(
            sim,
            "d0",
            DiskParams {
                avg_position: SimDuration::from_millis(20),
                seq_position: SimDuration::from_millis(2),
                transfer_rate: 1_000_000, // 1 MB/s => 4 KB = 4096 us
            },
        )
    }

    #[test]
    fn random_access_time_is_position_plus_transfer() {
        let sim = Sim::new();
        let d = disk(&sim);
        let d2 = d.clone();
        sim.block_on(async move {
            d2.read(100, 4096).await;
        });
        assert_eq!(sim.now().as_micros(), 20_000 + 4_096);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().bytes_read, 4096);
    }

    #[test]
    fn sequential_access_is_cheaper() {
        let sim = Sim::new();
        let d = disk(&sim);
        let d2 = d.clone();
        sim.block_on(async move {
            d2.write(100, 4096).await;
            d2.write(101, 4096).await; // sequential
            d2.write(500, 4096).await; // random
        });
        let expect = (20_000 + 4_096) + (2_000 + 4_096) + (20_000 + 4_096);
        assert_eq!(sim.now().as_micros(), expect as u64);
        assert_eq!(d.stats().writes, 3);
    }

    #[test]
    fn rewrite_of_same_block_counts_as_sequential() {
        let sim = Sim::new();
        let d = disk(&sim);
        let d2 = d.clone();
        sim.block_on(async move {
            d2.write(7, 1024).await;
            d2.write(7, 1024).await;
        });
        let expect = (20_000 + 1_024) + (2_000 + 1_024);
        assert_eq!(sim.now().as_micros(), expect as u64);
    }

    #[test]
    fn requests_queue_fifo_on_one_arm() {
        let sim = Sim::new();
        let d = disk(&sim);
        for i in 0..3u64 {
            let d = d.clone();
            sim.spawn(async move {
                d.read(i * 1000, 4096).await;
            });
        }
        sim.run_to_quiescence();
        // Three random accesses, serialized.
        assert_eq!(sim.now().as_micros(), 3 * (20_000 + 4_096));
        assert_eq!(
            d.arm().busy_permit_micros(),
            u128::from(sim.now().as_micros())
        );
    }

    #[test]
    fn ra81_transfer_time_sane() {
        let p = DiskParams::ra81();
        let t = p.transfer_time(4096);
        // 4 KB at 2.2 MB/s ~ 1.86 ms.
        assert!(t.as_micros() > 1_500 && t.as_micros() < 2_200, "{t}");
    }

    #[test]
    fn zero_rate_means_free_transfer() {
        let p = DiskParams {
            avg_position: SimDuration::ZERO,
            seq_position: SimDuration::ZERO,
            transfer_rate: 0,
        };
        assert_eq!(p.transfer_time(1 << 20), SimDuration::ZERO);
    }
}
