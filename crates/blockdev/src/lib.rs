//! A seek/rotation/transfer disk model with pluggable arm scheduling.
//!
//! The paper's server used RA81/RA82 drives ("moderately high performance"
//! for 1989). What matters for reproducing the results is not the exact
//! drive geometry but the two properties the paper leans on:
//!
//! 1. **Writes are slow and synchronous at the server** — every NFS `write`
//!    RPC costs a disk access before the reply, so write-through dominates
//!    elapsed time.
//! 2. **Sequential transfers are much cheaper than random ones** — delayed
//!    write-back batches dirty blocks into sequential runs.
//!
//! [`Disk`] models a single arm. The order requests are pulled off the
//! queue is a [`DiskSched`] policy: [`DiskSched::Fifo`] (the default)
//! reproduces the paper-era driver exactly — strict arrival order, full
//! `avg_position` charged for every non-adjacent access — while
//! [`DiskSched::CLook`] services the nearest block in the sweep
//! direction, charging a seek-distance-dependent positioning time, with
//! an aging limit `max_bypass` so no request is bypassed more than K
//! times. All timing is deterministic.

use std::cell::RefCell;
use std::rc::Rc;

use spritely_metrics::{Histogram, InflightGauge};
use spritely_sim::{Event, Resource, Sim, SimDuration};
use spritely_trace::{EventKind, Tracer};

/// Timing parameters for a [`Disk`].
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Average positioning (seek + rotational latency) for a random access.
    pub avg_position: SimDuration,
    /// Positioning charged when the access is sequential to the previous
    /// one (track-to-track / same-track rotation).
    pub seq_position: SimDuration,
    /// Media transfer rate in bytes per second.
    pub transfer_rate: u64,
}

impl DiskParams {
    /// Parameters approximating the paper's RA81 drive: ~28 ms average
    /// positioning, ~2.2 MB/s media rate.
    pub fn ra81() -> Self {
        DiskParams {
            avg_position: SimDuration::from_micros(28_000),
            seq_position: SimDuration::from_micros(2_500),
            transfer_rate: 2_200_000,
        }
    }

    /// Time to transfer `bytes` at the media rate.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.transfer_rate == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros((bytes as u64 * 1_000_000).div_ceil(self.transfer_rate))
    }
}

/// Arm scheduling policy for a [`Disk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskSched {
    /// Strict arrival order; every non-adjacent access pays the full
    /// `avg_position`. This is the paper-era behavior and the default.
    #[default]
    Fifo,
    /// C-LOOK elevator: serve the pending request with the smallest block
    /// address at or above the arm's current position, wrapping to the
    /// lowest pending address when the sweep runs dry. Positioning is
    /// charged by seek distance (see [`Disk::clook_position`]).
    CLook {
        /// Aging limit: once a request has been bypassed this many times
        /// it is served before any sweep-order pick, so no request is
        /// ever bypassed more than `max_bypass` times.
        max_bypass: u32,
        /// Seek distance (in blocks) treated as a full stroke; longer
        /// seeks are charged the same as a full stroke.
        stroke_blocks: u64,
    },
}

impl DiskSched {
    /// The value of the `disk_sched` trace meta event for this policy,
    /// parsed back by the trace checker's reordering-bound rule.
    pub fn meta_value(&self) -> String {
        match self {
            DiskSched::Fifo => "fifo".to_string(),
            DiskSched::CLook { max_bypass, .. } => format!("clook:{max_bypass}"),
        }
    }
}

/// Cumulative statistics for one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

/// A single-arm disk with a scheduled request queue.
#[derive(Clone)]
pub struct Disk {
    sim: Sim,
    arm: Resource,
    params: DiskParams,
    sched: DiskSched,
    state: Rc<RefCell<DiskState>>,
    queue: Rc<RefCell<SchedQueue>>,
    /// Requests queued but not yet dispatched to the arm.
    queue_depth: InflightGauge,
    /// Per-request queue wait (enqueue to dispatch), in milliseconds.
    wait_ms: Histogram,
    /// Per-request positioning time charged, in milliseconds.
    pos_ms: Histogram,
    tracer: Rc<RefCell<Option<Tracer>>>,
}

struct DiskState {
    last_block: Option<u64>,
    stats: DiskStats,
}

/// One queued C-LOOK request awaiting dispatch.
struct Pending {
    id: u64,
    block: u64,
    bypass: u32,
    grant: Event,
}

#[derive(Default)]
struct SchedQueue {
    /// Arrival order; only used by the C-LOOK policy (FIFO rides the
    /// arm resource's own queue).
    pending: Vec<Pending>,
    /// Request currently granted the arm, if any.
    current: Option<u64>,
    next_req: u64,
}

impl Disk {
    /// Creates a FIFO-scheduled disk attached to `sim`.
    pub fn new(sim: &Sim, name: impl Into<String>, params: DiskParams) -> Self {
        Self::with_sched(sim, name, params, DiskSched::Fifo)
    }

    /// Creates a disk with an explicit scheduling policy.
    pub fn with_sched(
        sim: &Sim,
        name: impl Into<String>,
        params: DiskParams,
        sched: DiskSched,
    ) -> Self {
        Disk {
            sim: sim.clone(),
            arm: Resource::new(sim, name, 1),
            params,
            sched,
            state: Rc::new(RefCell::new(DiskState {
                last_block: None,
                stats: DiskStats::default(),
            })),
            queue: Rc::new(RefCell::new(SchedQueue::default())),
            queue_depth: InflightGauge::new(),
            wait_ms: Histogram::new(),
            pos_ms: Histogram::new(),
            tracer: Rc::new(RefCell::new(None)),
        }
    }

    /// The disk's timing parameters.
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// The active scheduling policy.
    pub fn sched(&self) -> DiskSched {
        self.sched
    }

    /// Statistics so far.
    pub fn stats(&self) -> DiskStats {
        self.state.borrow().stats
    }

    /// The arm resource (for utilization reporting).
    pub fn arm(&self) -> &Resource {
        &self.arm
    }

    /// Queue-depth gauge: requests enqueued but not yet dispatched.
    pub fn queue_depth(&self) -> &InflightGauge {
        &self.queue_depth
    }

    /// Per-request queue wait histogram (milliseconds).
    pub fn wait_ms(&self) -> &Histogram {
        &self.wait_ms
    }

    /// Per-request positioning-time histogram (milliseconds).
    pub fn pos_ms(&self) -> &Histogram {
        &self.pos_ms
    }

    /// Attach a tracer; every request emits `disk_queue` / `disk_done`
    /// events from then on. Emission never awaits, so traced runs are
    /// behaviorally identical.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.tracer.borrow_mut() = Some(tracer);
    }

    fn emit(&self, kind: EventKind) {
        if let Some(t) = self.tracer.borrow().as_ref() {
            t.emit(0, kind);
        }
    }

    /// Reads `bytes` at `block`, waiting in the scheduler queue and
    /// consuming positioning + transfer time.
    pub async fn read(&self, block: u64, bytes: usize) {
        self.access(block, bytes, false).await;
    }

    /// Writes `bytes` at `block`; same timing as a read (the model does not
    /// distinguish write settle time).
    pub async fn write(&self, block: u64, bytes: usize) {
        self.access(block, bytes, true).await;
    }

    async fn access(&self, block: u64, bytes: usize, is_write: bool) {
        match self.sched {
            DiskSched::Fifo => self.access_fifo(block, bytes, is_write).await,
            DiskSched::CLook {
                max_bypass,
                stroke_blocks,
            } => {
                self.access_clook(block, bytes, is_write, max_bypass, stroke_blocks)
                    .await
            }
        }
    }

    /// The paper-era path: ride the arm resource's FIFO queue directly.
    /// Everything added around the legacy body (gauge, histograms, trace
    /// events) is synchronous accounting, so the timing is bit-for-bit
    /// what it was before scheduling existed.
    async fn access_fifo(&self, block: u64, bytes: usize, is_write: bool) {
        let req = self.next_req_id();
        self.emit(EventKind::DiskQueue {
            disk: self.arm.name(),
            req,
            block,
            write: is_write,
        });
        self.queue_depth.inc();
        let enq_us = self.sim.now().as_micros();
        let guard = self.arm.acquire().await;
        let wait_us = self.sim.now().as_micros() - enq_us;
        self.queue_depth.dec();
        self.wait_ms.record(wait_us / 1_000);
        let (service, pos) = {
            let st = self.state.borrow();
            let seq = st.last_block == Some(block.wrapping_sub(1)) || st.last_block == Some(block);
            let pos = if seq {
                self.params.seq_position
            } else {
                self.params.avg_position
            };
            (pos + self.params.transfer_time(bytes), pos)
        };
        self.pos_ms.record(pos.as_micros() / 1_000);
        self.sim.sleep(service).await;
        self.finish_access(block, bytes, is_write);
        self.emit(EventKind::DiskDone {
            disk: self.arm.name(),
            req,
            block,
            write: is_write,
            wait_us,
            pos_us: pos.as_micros(),
        });
        drop(guard);
    }

    /// The C-LOOK path: requests park in a scheduler queue and are granted
    /// the arm in sweep order (nearest block at or above the head, wrapping
    /// when the sweep runs dry), with `max_bypass` aging.
    async fn access_clook(
        &self,
        block: u64,
        bytes: usize,
        is_write: bool,
        max_bypass: u32,
        stroke_blocks: u64,
    ) {
        let req = self.next_req_id();
        self.emit(EventKind::DiskQueue {
            disk: self.arm.name(),
            req,
            block,
            write: is_write,
        });
        self.queue_depth.inc();
        let enq_us = self.sim.now().as_micros();
        let grant = Event::new();
        self.queue.borrow_mut().pending.push(Pending {
            id: req,
            block,
            bypass: 0,
            grant: grant.clone(),
        });
        // Ensures the request is de-queued (or the arm handed off) even if
        // this future is dropped mid-wait.
        let ticket = Ticket {
            disk: self,
            id: req,
        };
        self.dispatch_next(max_bypass);
        grant.wait().await;
        let wait_us = self.sim.now().as_micros() - enq_us;
        self.queue_depth.dec();
        self.wait_ms.record(wait_us / 1_000);
        // Only the granted request ever touches the arm, so this acquire
        // always takes the fast path; the resource exists purely for
        // busy-time (utilization) accounting.
        let guard = self.arm.acquire().await;
        let pos = self.clook_position(block, stroke_blocks);
        self.pos_ms.record(pos.as_micros() / 1_000);
        self.sim.sleep(pos + self.params.transfer_time(bytes)).await;
        self.finish_access(block, bytes, is_write);
        self.emit(EventKind::DiskDone {
            disk: self.arm.name(),
            req,
            block,
            write: is_write,
            wait_us,
            pos_us: pos.as_micros(),
        });
        drop(guard);
        drop(ticket); // releases the arm to the next pick
    }

    fn next_req_id(&self) -> u64 {
        let mut q = self.queue.borrow_mut();
        q.next_req += 1;
        q.next_req
    }

    fn finish_access(&self, block: u64, bytes: usize, is_write: bool) {
        let mut st = self.state.borrow_mut();
        st.last_block = Some(block);
        if is_write {
            st.stats.writes += 1;
            st.stats.bytes_written += bytes as u64;
        } else {
            st.stats.reads += 1;
            st.stats.bytes_read += bytes as u64;
        }
    }

    /// Positioning time for a C-LOOK dispatch: seek distance `d` blocks
    /// costs `seq + 1.5 (avg - seq) sqrt(d / stroke)`, saturating at a
    /// full stroke. The square root approximates the accelerate/decelerate
    /// profile of a real arm, and the 1.5 factor calibrates the curve so a
    /// uniformly random seek averages `avg_position` (E[sqrt(U)] = 2/3) —
    /// FIFO and C-LOOK agree on unscheduled random workloads and diverge
    /// exactly when scheduling shortens seeks.
    fn clook_position(&self, block: u64, stroke_blocks: u64) -> SimDuration {
        let Some(head) = self.state.borrow().last_block else {
            return self.params.avg_position;
        };
        let d = head.abs_diff(block);
        if d <= 1 {
            return self.params.seq_position;
        }
        let stroke = stroke_blocks.max(2);
        let frac = d.min(stroke) as f64 / stroke as f64;
        let seq = self.params.seq_position.as_micros() as f64;
        let avg = self.params.avg_position.as_micros() as f64;
        SimDuration::from_micros((seq + 1.5 * (avg - seq) * frac.sqrt()).round() as u64)
    }

    /// If the arm is free, pick the next request per C-LOOK and grant it.
    fn dispatch_next(&self, max_bypass: u32) {
        let mut q = self.queue.borrow_mut();
        if q.current.is_some() || q.pending.is_empty() {
            return;
        }
        let head = self.state.borrow().last_block.unwrap_or(0);
        let pick = Self::clook_pick(&q.pending, head, max_bypass);
        let chosen = q.pending.remove(pick);
        for p in &mut q.pending {
            if p.id < chosen.id {
                p.bypass += 1;
            }
        }
        q.current = Some(chosen.id);
        drop(q);
        chosen.grant.set();
    }

    /// Index of the next request to serve: the oldest aged-out request if
    /// any has been bypassed `max_bypass` times, else the lowest block at
    /// or above `head` (the sweep), else the lowest block overall (the
    /// wrap). Ties break by arrival order.
    fn clook_pick(pending: &[Pending], head: u64, max_bypass: u32) -> usize {
        if let Some(i) = pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.bypass >= max_bypass)
            .min_by_key(|(_, p)| p.id)
            .map(|(i, _)| i)
        {
            return i;
        }
        pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.block >= head)
            .min_by_key(|(_, p)| (p.block, p.id))
            .or_else(|| {
                pending
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, p)| (p.block, p.id))
            })
            .map(|(i, _)| i)
            .expect("pending is non-empty")
    }
}

/// Cancel-safety for the C-LOOK path: if the access future is dropped
/// while queued, the request leaves the queue; if it was already granted
/// (or mid-service), the arm is handed to the next pick.
struct Ticket<'a> {
    disk: &'a Disk,
    id: u64,
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        let max_bypass = match self.disk.sched {
            DiskSched::CLook { max_bypass, .. } => max_bypass,
            DiskSched::Fifo => return,
        };
        let mut q = self.disk.queue.borrow_mut();
        if q.current == Some(self.id) {
            q.current = None;
            drop(q);
            self.disk.dispatch_next(max_bypass);
        } else if let Some(i) = q.pending.iter().position(|p| p.id == self.id) {
            q.pending.remove(i);
            drop(q);
            self.disk.queue_depth.dec();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(sim: &Sim) -> Disk {
        Disk::new(sim, "d0", test_params())
    }

    fn test_params() -> DiskParams {
        DiskParams {
            avg_position: SimDuration::from_millis(20),
            seq_position: SimDuration::from_millis(2),
            transfer_rate: 1_000_000, // 1 MB/s => 4 KB = 4096 us
        }
    }

    fn clook(sim: &Sim, max_bypass: u32) -> Disk {
        Disk::with_sched(
            sim,
            "d0",
            test_params(),
            DiskSched::CLook {
                max_bypass,
                stroke_blocks: 1 << 20,
            },
        )
    }

    #[test]
    fn random_access_time_is_position_plus_transfer() {
        let sim = Sim::new();
        let d = disk(&sim);
        let d2 = d.clone();
        sim.block_on(async move {
            d2.read(100, 4096).await;
        });
        assert_eq!(sim.now().as_micros(), 20_000 + 4_096);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().bytes_read, 4096);
    }

    #[test]
    fn sequential_access_is_cheaper() {
        let sim = Sim::new();
        let d = disk(&sim);
        let d2 = d.clone();
        sim.block_on(async move {
            d2.write(100, 4096).await;
            d2.write(101, 4096).await; // sequential
            d2.write(500, 4096).await; // random
        });
        let expect = (20_000 + 4_096) + (2_000 + 4_096) + (20_000 + 4_096);
        assert_eq!(sim.now().as_micros(), expect as u64);
        assert_eq!(d.stats().writes, 3);
    }

    #[test]
    fn rewrite_of_same_block_counts_as_sequential() {
        let sim = Sim::new();
        let d = disk(&sim);
        let d2 = d.clone();
        sim.block_on(async move {
            d2.write(7, 1024).await;
            d2.write(7, 1024).await;
        });
        let expect = (20_000 + 1_024) + (2_000 + 1_024);
        assert_eq!(sim.now().as_micros(), expect as u64);
    }

    #[test]
    fn requests_queue_fifo_on_one_arm() {
        let sim = Sim::new();
        let d = disk(&sim);
        for i in 0..3u64 {
            let d = d.clone();
            sim.spawn(async move {
                d.read(i * 1000, 4096).await;
            });
        }
        sim.run_to_quiescence();
        // Three random accesses, serialized.
        assert_eq!(sim.now().as_micros(), 3 * (20_000 + 4_096));
        assert_eq!(
            d.arm().busy_permit_micros(),
            u128::from(sim.now().as_micros())
        );
    }

    #[test]
    fn ra81_transfer_time_sane() {
        let p = DiskParams::ra81();
        let t = p.transfer_time(4096);
        // 4 KB at 2.2 MB/s ~ 1.86 ms.
        assert!(t.as_micros() > 1_500 && t.as_micros() < 2_200, "{t}");
    }

    #[test]
    fn zero_rate_means_free_transfer() {
        let p = DiskParams {
            avg_position: SimDuration::ZERO,
            seq_position: SimDuration::ZERO,
            transfer_rate: 0,
        };
        assert_eq!(p.transfer_time(1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn fifo_observability_counts_waits_and_depth() {
        let sim = Sim::new();
        let d = disk(&sim);
        for i in 0..3u64 {
            let d = d.clone();
            sim.spawn(async move {
                d.read(i * 1000, 4096).await;
            });
        }
        sim.run_to_quiescence();
        assert_eq!(d.wait_ms().count(), 3);
        assert_eq!(d.pos_ms().count(), 3);
        // Request 3 waited behind two full services.
        assert_eq!(d.wait_ms().max(), 2 * (20_000 + 4_096) / 1_000);
        assert_eq!(d.queue_depth().current(), 0);
        // The first request dispatches instantly; 2 and 3 overlap in queue.
        assert_eq!(d.queue_depth().peak(), 2);
    }

    #[test]
    fn clook_serves_sweep_order_not_arrival_order() {
        let sim = Sim::new();
        let d = clook(&sim, 1000);
        // Seed the head at block 0, then queue far, near, middle while
        // the arm is busy with the first request.
        let order: Rc<RefCell<Vec<u64>>> = Rc::default();
        {
            let d = d.clone();
            sim.spawn(async move {
                d.write(0, 512).await;
            });
        }
        for &blk in &[900_000u64, 10, 5_000] {
            let d = d.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                d.read(blk, 512).await;
                order.borrow_mut().push(blk);
            });
        }
        sim.run_to_quiescence();
        assert_eq!(*order.borrow(), vec![10, 5_000, 900_000]);
        assert_eq!(d.stats().reads, 3);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn clook_short_seeks_cost_less_than_fifo_average() {
        let sim = Sim::new();
        let d = clook(&sim, 1000);
        let d2 = d.clone();
        sim.block_on(async move {
            d2.write(0, 512).await;
            d2.write(200, 512).await; // short seek within the stroke
        });
        // First access pays avg_position (cold head); the 200-block seek
        // on a 1M-block stroke costs ~2.4 ms, far under the 20 ms average.
        assert_eq!(d.pos_ms().count(), 2);
        assert_eq!(d.pos_ms().count_of(20), 1);
        let short = d.pos_ms().sum() - 20;
        assert!(short < 5, "short seek should beat avg, got {short} ms");
    }

    #[test]
    fn clook_aging_bounds_starvation() {
        // A request at a far block with max_bypass = 1 must be served
        // after at most one nearer request bypasses it.
        let sim = Sim::new();
        let d = clook(&sim, 1);
        let order: Rc<RefCell<Vec<u64>>> = Rc::default();
        {
            let d = d.clone();
            sim.spawn(async move {
                d.write(0, 512).await;
            });
        }
        // Far request arrives first, then a stream of near requests.
        for &blk in &[500_000u64, 10, 20, 30, 40] {
            let d = d.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                d.read(blk, 512).await;
                order.borrow_mut().push(blk);
            });
        }
        sim.run_to_quiescence();
        let served = order.borrow().clone();
        let far_at = served.iter().position(|&b| b == 500_000).unwrap();
        assert!(
            far_at <= 1,
            "far request bypassed more than once: {served:?}"
        );
    }

    #[test]
    fn clook_wrap_returns_to_lowest_block() {
        let sim = Sim::new();
        let d = clook(&sim, 1000);
        let order: Rc<RefCell<Vec<u64>>> = Rc::default();
        {
            let d = d.clone();
            sim.spawn(async move {
                d.write(100, 512).await; // head lands at 100
            });
        }
        for &blk in &[5u64, 200] {
            let d = d.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                d.read(blk, 512).await;
                order.borrow_mut().push(blk);
            });
        }
        sim.run_to_quiescence();
        // Sweep up to 200 first, then wrap down to 5.
        assert_eq!(*order.borrow(), vec![200, 5]);
    }

    #[test]
    fn clook_arm_utilization_accounts_service_time() {
        let sim = Sim::new();
        let d = clook(&sim, 1000);
        for i in 0..3u64 {
            let d = d.clone();
            sim.spawn(async move {
                d.read(i * 100_000, 4096).await;
            });
        }
        sim.run_to_quiescence();
        // One request at a time: busy integral equals elapsed time.
        assert_eq!(
            d.arm().busy_permit_micros(),
            u128::from(sim.now().as_micros())
        );
        assert_eq!(d.queue_depth().current(), 0);
    }

    #[test]
    fn dropped_queued_request_leaves_the_queue() {
        let sim = Sim::new();
        let d = clook(&sim, 1000);
        {
            let d = d.clone();
            sim.spawn(async move {
                d.write(0, 4096).await;
            });
        }
        {
            let d = d.clone();
            let s = sim.clone();
            sim.spawn(async move {
                // Cancelled long before the arm frees up.
                let _ = s
                    .timeout(SimDuration::from_micros(10), d.read(999, 512))
                    .await;
            });
        }
        {
            let d = d.clone();
            sim.spawn(async move {
                d.read(50, 512).await;
            });
        }
        sim.run_to_quiescence();
        assert_eq!(d.stats().reads, 1, "cancelled read must not be served");
        assert_eq!(d.queue_depth().current(), 0);
        assert_eq!(d.queue.borrow().pending.len(), 0);
    }
}
