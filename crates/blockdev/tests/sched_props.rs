//! Property tests for the disk-arm scheduler: C-LOOK must serve every
//! request exactly once, never bypass a request more than `max_bypass`
//! times, and the FIFO policy must be timing-equivalent to the original
//! unscheduled queue (serial service in arrival order with the two-level
//! positioning rule).

use proptest::prelude::*;
use spritely_blockdev::{Disk, DiskParams, DiskSched};
use spritely_sim::{Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

fn params() -> DiskParams {
    DiskParams {
        avg_position: SimDuration::from_millis(20),
        seq_position: SimDuration::from_millis(2),
        transfer_rate: 1_000_000,
    }
}

/// Runs `blocks` as concurrent requests (spawned in order at t = 0) and
/// returns the completion order of block addresses.
fn run_all(sched: DiskSched, blocks: &[u64]) -> (Vec<u64>, u64) {
    let sim = Sim::new();
    let d = Disk::with_sched(&sim, "d0", params(), sched);
    let order: Rc<RefCell<Vec<u64>>> = Rc::default();
    for (i, &blk) in blocks.iter().enumerate() {
        let d = d.clone();
        let order = Rc::clone(&order);
        sim.spawn(async move {
            d.read(blk, 4096).await;
            order.borrow_mut().push(blk * 1000 + i as u64);
        });
    }
    sim.run_to_quiescence();
    let served = order.borrow().clone();
    assert_eq!(d.stats().reads, blocks.len() as u64);
    (served, sim.now().as_micros())
}

/// The original FIFO disk timing: serial service in arrival order,
/// `seq_position` when the block is the same or adjacent to the previous
/// one, `avg_position` otherwise, plus transfer time.
fn fifo_reference_micros(blocks: &[u64]) -> u64 {
    let p = params();
    let mut last: Option<u64> = None;
    let mut t = 0;
    for &b in blocks {
        let seq = last == Some(b.wrapping_sub(1)) || last == Some(b);
        let pos = if seq { p.seq_position } else { p.avg_position };
        t += pos.as_micros() + p.transfer_time(4096).as_micros();
        last = Some(b);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn clook_serves_every_request_exactly_once(
        blocks in proptest::collection::vec(0u64..2000, 1..40),
        max_bypass in 0u32..6,
    ) {
        let sched = DiskSched::CLook { max_bypass, stroke_blocks: 1 << 12 };
        let (served, _) = run_all(sched, &blocks);
        prop_assert_eq!(served.len(), blocks.len());
        let mut want: Vec<u64> = blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| b * 1000 + i as u64)
            .collect();
        let mut got = served.clone();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, want, "each request served exactly once");
    }

    #[test]
    fn clook_bypass_count_is_bounded(
        blocks in proptest::collection::vec(0u64..2000, 1..40),
        max_bypass in 0u32..6,
    ) {
        let sched = DiskSched::CLook { max_bypass, stroke_blocks: 1 << 12 };
        let (served, _) = run_all(sched, &blocks);
        // Request i (arrival order) is bypassed once for every
        // later-arriving request served before it.
        let arrival_of = |tag: u64| (tag % 1000) as usize;
        for (pos, &tag) in served.iter().enumerate() {
            let bypasses = served[..pos]
                .iter()
                .filter(|&&earlier| arrival_of(earlier) > arrival_of(tag))
                .count();
            prop_assert!(
                bypasses <= max_bypass as usize,
                "request {} bypassed {} times (K = {})",
                arrival_of(tag), bypasses, max_bypass
            );
        }
    }

    #[test]
    fn fifo_matches_the_unscheduled_reference_model(
        blocks in proptest::collection::vec(0u64..2000, 1..40),
    ) {
        let (served, elapsed) = run_all(DiskSched::Fifo, &blocks);
        let arrival: Vec<u64> = served.iter().map(|t| t % 1000).collect();
        let want: Vec<u64> = (0..blocks.len() as u64).collect();
        prop_assert_eq!(arrival, want, "FIFO serves in arrival order");
        prop_assert_eq!(elapsed, fifo_reference_micros(&blocks));
    }
}
