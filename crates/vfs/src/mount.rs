//! Mount table and backend dispatch.

use std::rc::Rc;

use spritely_core::SnfsClient;
use spritely_localfs::LocalFs;
use spritely_nfs::NfsClient;
use spritely_proto::{DirEntry, Fattr, FileHandle, NfsStatus, Result};

/// One of the three file system implementations a path can resolve to.
#[derive(Clone)]
pub enum FsBackend {
    /// A local disk file system.
    Local(LocalFs),
    /// A remote file system over baseline NFS.
    Nfs(NfsClient),
    /// A remote file system over Spritely NFS.
    Snfs(SnfsClient),
}

impl FsBackend {
    /// Translates one name component under `dir`.
    pub async fn lookup(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        match self {
            FsBackend::Local(fs) => fs.lookup(dir, name),
            FsBackend::Nfs(c) => c.lookup(dir, name).await,
            FsBackend::Snfs(c) => c.lookup(dir, name).await,
        }
    }

    /// Creates a regular file.
    pub async fn create(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        match self {
            FsBackend::Local(fs) => fs.create(dir, name).await,
            FsBackend::Nfs(c) => c.create(dir, name).await,
            FsBackend::Snfs(c) => c.create(dir, name).await,
        }
    }

    /// Protocol-specific open work (consistency checks / open RPC).
    pub async fn open(&self, fh: FileHandle, write: bool) -> Result<Fattr> {
        match self {
            FsBackend::Local(fs) => fs.getattr(fh),
            FsBackend::Nfs(c) => c.open(fh, write).await,
            FsBackend::Snfs(c) => c.open(fh, write).await,
        }
    }

    /// Protocol-specific close work (drain / close RPC).
    pub async fn close(&self, fh: FileHandle, write: bool) -> Result<()> {
        match self {
            FsBackend::Local(_) => Ok(()),
            FsBackend::Nfs(c) => c.close(fh, write).await,
            FsBackend::Snfs(c) => c.close(fh, write).await,
        }
    }

    /// Reads up to `len` bytes at `offset`.
    pub async fn read(&self, fh: FileHandle, offset: u64, len: u32) -> Result<Vec<u8>> {
        match self {
            FsBackend::Local(fs) => fs.read(fh, offset, len).await.map(|(d, _, _)| d),
            FsBackend::Nfs(c) => c.read(fh, offset, len).await.map(|(d, _)| d),
            FsBackend::Snfs(c) => c.read(fh, offset, len).await.map(|(d, _)| d),
        }
    }

    /// Writes at `offset` with the backend's native write policy.
    pub async fn write(&self, fh: FileHandle, offset: u64, data: &[u8]) -> Result<()> {
        match self {
            FsBackend::Local(fs) => fs.write(fh, offset, data, false).await.map(|_| ()),
            FsBackend::Nfs(c) => c.write(fh, offset, data).await,
            FsBackend::Snfs(c) => c.write(fh, offset, data).await,
        }
    }

    /// Attributes.
    pub async fn getattr(&self, fh: FileHandle) -> Result<Fattr> {
        match self {
            FsBackend::Local(fs) => fs.getattr(fh),
            FsBackend::Nfs(c) => c.probe_attrs(fh, false).await,
            FsBackend::Snfs(c) => c.getattr(fh).await,
        }
    }

    /// Truncate.
    pub async fn truncate(&self, fh: FileHandle, size: u64) -> Result<Fattr> {
        match self {
            FsBackend::Local(fs) => fs.setattr(fh, Some(size)).await,
            FsBackend::Nfs(c) => c.setattr(fh, Some(size)).await,
            FsBackend::Snfs(c) => c.setattr(fh, Some(size)).await,
        }
    }

    /// Removes a regular file; `victim` lets remote clients drop caches
    /// and cancel delayed writes.
    pub async fn remove(&self, dir: FileHandle, name: &str, victim: FileHandle) -> Result<()> {
        match self {
            FsBackend::Local(fs) => fs.remove(dir, name).await,
            FsBackend::Nfs(c) => {
                c.remove(dir, name).await?;
                c.forget(victim);
                Ok(())
            }
            FsBackend::Snfs(c) => c.remove(dir, name, Some(victim)).await,
        }
    }

    /// Creates a directory.
    pub async fn mkdir(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        match self {
            FsBackend::Local(fs) => fs.mkdir(dir, name).await,
            FsBackend::Nfs(c) => c.mkdir(dir, name).await,
            FsBackend::Snfs(c) => c.mkdir(dir, name).await,
        }
    }

    /// Removes an empty directory.
    pub async fn rmdir(&self, dir: FileHandle, name: &str) -> Result<()> {
        match self {
            FsBackend::Local(fs) => fs.rmdir(dir, name).await,
            FsBackend::Nfs(c) => c.rmdir(dir, name).await,
            FsBackend::Snfs(c) => c.rmdir(dir, name).await,
        }
    }

    /// Renames within one backend.
    pub async fn rename(
        &self,
        from_dir: FileHandle,
        from_name: &str,
        to_dir: FileHandle,
        to_name: &str,
    ) -> Result<()> {
        match self {
            FsBackend::Local(fs) => fs.rename(from_dir, from_name, to_dir, to_name).await,
            FsBackend::Nfs(c) => c.rename(from_dir, from_name, to_dir, to_name).await,
            FsBackend::Snfs(c) => c.rename(from_dir, from_name, to_dir, to_name).await,
        }
    }

    /// Lists a directory.
    pub async fn readdir(&self, dir: FileHandle) -> Result<Vec<DirEntry>> {
        match self {
            FsBackend::Local(fs) => fs.readdir(dir),
            FsBackend::Nfs(c) => c.readdir(dir).await,
            FsBackend::Snfs(c) => c.readdir(dir).await,
        }
    }

    /// Pushes pending data for `fh` toward the server/disk.
    pub async fn fsync(&self, fh: FileHandle) -> Result<()> {
        match self {
            FsBackend::Local(fs) => fs.fsync(fh).await,
            FsBackend::Nfs(c) => c.fsync(fh).await,
            FsBackend::Snfs(c) => c.fsync(fh).await,
        }
    }

    /// Creates a hard link `to_dir/to_name` to `from`.
    pub async fn link(&self, from: FileHandle, to_dir: FileHandle, to_name: &str) -> Result<Fattr> {
        match self {
            FsBackend::Local(fs) => fs.link(from, to_dir, to_name).await,
            FsBackend::Nfs(c) => c.link(from, to_dir, to_name).await,
            FsBackend::Snfs(c) => c.link(from, to_dir, to_name).await,
        }
    }

    /// Creates a symbolic link `dir/name` → `target`.
    pub async fn symlink(
        &self,
        dir: FileHandle,
        name: &str,
        target: &str,
    ) -> Result<(FileHandle, Fattr)> {
        match self {
            FsBackend::Local(fs) => fs.symlink(dir, name, target).await,
            FsBackend::Nfs(c) => c.symlink(dir, name, target).await,
            FsBackend::Snfs(c) => c.symlink(dir, name, target).await,
        }
    }

    /// Reads a symbolic link's target.
    pub async fn readlink(&self, fh: FileHandle) -> Result<String> {
        match self {
            FsBackend::Local(fs) => fs.readlink(fh),
            FsBackend::Nfs(c) => c.readlink(fh).await,
            FsBackend::Snfs(c) => c.readlink(fh).await,
        }
    }
}

/// One mount-table entry: a path prefix served by a backend.
pub struct Mount {
    prefix: Vec<String>,
    backend: FsBackend,
    root: FileHandle,
}

impl Mount {
    /// Creates a mount of `backend` (whose root handle is `root`) at
    /// `prefix` (e.g. `"/"` or `"/usr/tmp"`).
    pub fn new(prefix: &str, backend: FsBackend, root: FileHandle) -> Self {
        Mount {
            prefix: split_path(prefix),
            backend,
            root,
        }
    }
}

/// Splits an absolute path into components.
pub(crate) fn split_path(path: &str) -> Vec<String> {
    path.split('/')
        .filter(|c| !c.is_empty())
        .map(str::to_string)
        .collect()
}

/// The mount table.
#[derive(Clone)]
pub struct Vfs {
    mounts: Rc<Vec<Mount>>,
}

impl Vfs {
    /// Builds a VFS from mounts. There must be a root (`"/"`) mount.
    ///
    /// # Panics
    ///
    /// Panics if no root mount is supplied.
    pub fn new(mounts: Vec<Mount>) -> Self {
        assert!(
            mounts.iter().any(|m| m.prefix.is_empty()),
            "a root (\"/\") mount is required"
        );
        Vfs {
            mounts: Rc::new(mounts),
        }
    }

    /// Resolves a path to `(backend, backend-root, remaining components)`
    /// using longest-prefix match on whole components.
    pub fn resolve(&self, path: &str) -> Result<(FsBackend, FileHandle, Vec<String>)> {
        let comps = split_path(path);
        let mut best: Option<&Mount> = None;
        for m in self.mounts.iter() {
            if m.prefix.len() <= comps.len()
                && m.prefix.iter().zip(&comps).all(|(a, b)| a == b)
                && best.is_none_or(|b| m.prefix.len() > b.prefix.len())
            {
                best = Some(m);
            }
        }
        let m = best.ok_or(NfsStatus::NoEnt)?;
        Ok((m.backend.clone(), m.root, comps[m.prefix.len()..].to_vec()))
    }
}
