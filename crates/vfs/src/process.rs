//! Simulated processes: fd tables, path syscalls, CPU charging.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use spritely_proto::{Fattr, FileHandle, FileType, NfsStatus, Result};
use spritely_sim::{Resource, Sim, SimDuration};

use crate::mount::{FsBackend, Vfs};

/// Maximum symlink expansions in one path resolution (ELOOP guard).
pub const MAX_SYMLINKS: usize = 8;

/// A file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u32);

/// Open mode flags (a small subset of `open(2)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if missing.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read() -> Self {
        OpenFlags {
            read: true,
            write: false,
            create: false,
            truncate: false,
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC` — the common "write a fresh file".
    pub fn create_write() -> Self {
        OpenFlags {
            read: false,
            write: true,
            create: true,
            truncate: true,
        }
    }

    /// `O_RDWR`.
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: false,
            truncate: false,
        }
    }
}

/// Per-syscall CPU costs charged to the process's host CPU.
#[derive(Debug, Clone, Copy)]
pub struct SyscallCosts {
    /// Fixed cost per syscall (trap, dispatch).
    pub per_call: SimDuration,
    /// Additional cost per KB moved by read/write (copyin/copyout).
    pub per_kb: SimDuration,
}

impl Default for SyscallCosts {
    fn default() -> Self {
        SyscallCosts {
            per_call: SimDuration::from_micros(120),
            per_kb: SimDuration::from_micros(40),
        }
    }
}

struct OpenFile {
    backend: FsBackend,
    fh: FileHandle,
    write: bool,
    read: bool,
    pos: u64,
}

struct Inner {
    sim: Sim,
    vfs: Vfs,
    cpu: Resource,
    costs: SyscallCosts,
    fds: RefCell<HashMap<Fd, OpenFile>>,
    next_fd: RefCell<u32>,
}

/// A simulated process: syscall API over the VFS, with CPU accounting.
#[derive(Clone)]
pub struct Proc {
    inner: Rc<Inner>,
}

impl Proc {
    /// Creates a process on the host owning `cpu`.
    pub fn new(sim: &Sim, vfs: Vfs, cpu: Resource, costs: SyscallCosts) -> Self {
        Proc {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                vfs,
                cpu,
                costs,
                fds: RefCell::new(HashMap::new()),
                next_fd: RefCell::new(3),
            }),
        }
    }

    /// The process's host CPU (for compute phases).
    pub fn cpu(&self) -> &Resource {
        &self.inner.cpu
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Burns CPU time (models computation between I/O).
    ///
    /// Long computations are sliced into scheduler quanta so that other
    /// work on the host (write-back daemons, RPC processing) interleaves,
    /// as it would under a preemptive kernel.
    pub async fn compute(&self, d: SimDuration) {
        const QUANTUM: SimDuration = SimDuration::from_millis(100);
        let mut left = d;
        while !left.is_zero() {
            let slice = left.min(QUANTUM);
            self.inner.cpu.use_for(slice).await;
            left = left.saturating_sub(slice);
        }
    }

    async fn charge(&self, bytes: usize) {
        let t = self.inner.costs.per_call + self.inner.costs.per_kb.mul_f64(bytes as f64 / 1024.0);
        if !t.is_zero() {
            self.inner.cpu.use_for(t).await;
        }
    }

    /// Resolves a path, following symbolic links in intermediate
    /// components always, and in the final component iff `follow_last`.
    /// Loops are cut at [`MAX_SYMLINKS`] expansions.
    ///
    /// The mount root's attributes are only fetched when the path *is*
    /// the root: intermediate components are validated from their lookup
    /// replies, and real clients pin the root's attributes at mount time.
    async fn resolve_follow(
        &self,
        path: &str,
        follow_last: bool,
    ) -> Result<(FsBackend, FileHandle, Fattr)> {
        let mut full: Vec<String> = crate::mount::split_path(path);
        let mut expansions = 0usize;
        'restart: loop {
            let joined = format!("/{}", full.join("/"));
            let (backend, root, comps) = self.inner.vfs.resolve(&joined)?;
            let head_len = full.len() - comps.len();
            let mut fh = root;
            let mut attr: Option<Fattr> = None;
            for (idx, c) in comps.iter().enumerate() {
                if attr.is_some_and(|a| a.ftype != FileType::Directory) {
                    return Err(NfsStatus::NotDir);
                }
                let (next, a) = backend.lookup(fh, c).await?;
                let is_last = idx + 1 == comps.len();
                if a.ftype == FileType::Symlink && (!is_last || follow_last) {
                    expansions += 1;
                    if expansions > MAX_SYMLINKS {
                        return Err(NfsStatus::Inval);
                    }
                    let target = backend.readlink(next).await?;
                    let rest = &comps[idx + 1..];
                    let mut new_full: Vec<String> = if target.starts_with('/') {
                        crate::mount::split_path(&target)
                    } else {
                        // Relative to the directory containing the link.
                        let mut v = full[..head_len + idx].to_vec();
                        for seg in crate::mount::split_path(&target) {
                            if seg == ".." {
                                v.pop();
                            } else if seg != "." {
                                v.push(seg);
                            }
                        }
                        v
                    };
                    new_full.extend(rest.iter().cloned());
                    full = new_full;
                    continue 'restart;
                }
                fh = next;
                attr = Some(a);
            }
            return match attr {
                Some(a) => Ok((backend, fh, a)),
                None => {
                    let a = backend.getattr(root).await?;
                    Ok((backend, fh, a))
                }
            };
        }
    }

    /// Resolves `path` to its parent directory handle and final name
    /// (symlinks followed in the parent portion, never in the final
    /// component).
    async fn walk_parent(&self, path: &str) -> Result<(FsBackend, FileHandle, String)> {
        let comps = crate::mount::split_path(path);
        let Some((last, parents)) = comps.split_last() else {
            return Err(NfsStatus::Inval);
        };
        let parent_path = format!("/{}", parents.join("/"));
        let (backend, dir, attr) = self.resolve_follow(&parent_path, true).await?;
        if attr.ftype != FileType::Directory {
            return Err(NfsStatus::NotDir);
        }
        Ok((backend, dir, last.clone()))
    }

    /// Opens a file by path, following symbolic links (including one in
    /// the final component).
    pub async fn open(&self, path: &str, flags: OpenFlags) -> Result<Fd> {
        self.charge(0).await;
        let (backend, dir, name) = self.walk_parent(path).await?;
        let (backend, fh) = match backend.lookup(dir, &name).await {
            Ok((_fh, attr)) if attr.ftype == FileType::Symlink => {
                // Re-resolve through the link; open(2) follows symlinks.
                let (b2, fh2, attr2) = self.resolve_follow(path, true).await?;
                if attr2.ftype == FileType::Directory && flags.write {
                    return Err(NfsStatus::IsDir);
                }
                if flags.truncate && flags.write && attr2.size > 0 {
                    b2.truncate(fh2, 0).await?;
                }
                (b2, fh2)
            }
            Ok((fh, attr)) => {
                if attr.ftype == FileType::Directory && flags.write {
                    return Err(NfsStatus::IsDir);
                }
                if flags.truncate && flags.write && attr.size > 0 {
                    backend.truncate(fh, 0).await?;
                }
                (backend, fh)
            }
            Err(NfsStatus::NoEnt) if flags.create => {
                let (fh, _) = backend.create(dir, &name).await?;
                (backend, fh)
            }
            Err(e) => return Err(e),
        };
        backend.open(fh, flags.write).await?;
        let fd = Fd(*self.inner.next_fd.borrow());
        *self.inner.next_fd.borrow_mut() += 1;
        self.inner.fds.borrow_mut().insert(
            fd,
            OpenFile {
                backend,
                fh,
                write: flags.write,
                read: flags.read || !flags.write,
                pos: 0,
            },
        );
        Ok(fd)
    }

    fn with_fd<T>(&self, fd: Fd, f: impl FnOnce(&mut OpenFile) -> T) -> Result<T> {
        let mut fds = self.inner.fds.borrow_mut();
        match fds.get_mut(&fd) {
            Some(of) => Ok(f(of)),
            None => Err(NfsStatus::Inval),
        }
    }

    /// Closes a descriptor (protocol close semantics apply).
    pub async fn close(&self, fd: Fd) -> Result<()> {
        self.charge(0).await;
        let of = self
            .inner
            .fds
            .borrow_mut()
            .remove(&fd)
            .ok_or(NfsStatus::Inval)?;
        of.backend.close(of.fh, of.write).await
    }

    /// Sequential read from the fd's position.
    pub async fn read(&self, fd: Fd, len: u32) -> Result<Vec<u8>> {
        let (backend, fh, pos) = self.with_fd(fd, |of| (of.backend.clone(), of.fh, of.pos))?;
        let readable = self.with_fd(fd, |of| of.read)?;
        if !readable {
            return Err(NfsStatus::Access);
        }
        let data = backend.read(fh, pos, len).await?;
        self.charge(data.len()).await;
        self.with_fd(fd, |of| of.pos += data.len() as u64)?;
        Ok(data)
    }

    /// Positional read (does not move the fd position).
    pub async fn read_at(&self, fd: Fd, offset: u64, len: u32) -> Result<Vec<u8>> {
        let (backend, fh, readable) =
            self.with_fd(fd, |of| (of.backend.clone(), of.fh, of.read))?;
        if !readable {
            return Err(NfsStatus::Access);
        }
        let data = backend.read(fh, offset, len).await?;
        self.charge(data.len()).await;
        Ok(data)
    }

    /// Sequential write at the fd's position.
    pub async fn write(&self, fd: Fd, data: &[u8]) -> Result<()> {
        let (backend, fh, pos, writable) =
            self.with_fd(fd, |of| (of.backend.clone(), of.fh, of.pos, of.write))?;
        if !writable {
            return Err(NfsStatus::Access);
        }
        self.charge(data.len()).await;
        backend.write(fh, pos, data).await?;
        self.with_fd(fd, |of| of.pos += data.len() as u64)?;
        Ok(())
    }

    /// Positional write (does not move the fd position).
    pub async fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> Result<()> {
        let (backend, fh, writable) =
            self.with_fd(fd, |of| (of.backend.clone(), of.fh, of.write))?;
        if !writable {
            return Err(NfsStatus::Access);
        }
        self.charge(data.len()).await;
        backend.write(fh, offset, data).await
    }

    /// Repositions the fd.
    pub fn seek(&self, fd: Fd, pos: u64) -> Result<()> {
        self.with_fd(fd, |of| of.pos = pos)
    }

    /// Flushes pending data for the fd to its server/disk.
    pub async fn fsync(&self, fd: Fd) -> Result<()> {
        self.charge(0).await;
        let (backend, fh) = self.with_fd(fd, |of| (of.backend.clone(), of.fh))?;
        backend.fsync(fh).await
    }

    /// Stats a path, following symbolic links (`stat(2)`).
    pub async fn stat(&self, path: &str) -> Result<Fattr> {
        self.charge(0).await;
        let (_, _, attr) = self.resolve_follow(path, true).await?;
        Ok(attr)
    }

    /// Stats a path *without* following a final symlink (`lstat(2)`).
    pub async fn lstat(&self, path: &str) -> Result<Fattr> {
        self.charge(0).await;
        let (_, _, attr) = self.resolve_follow(path, false).await?;
        Ok(attr)
    }

    /// Creates a hard link at `linkpath` to the existing file at
    /// `existing` (both must live in the same mount, as `link(2)`'s
    /// EXDEV rule requires).
    pub async fn link(&self, existing: &str, linkpath: &str) -> Result<()> {
        self.charge(0).await;
        let (_, from, attr) = self.resolve_follow(existing, true).await?;
        if attr.ftype == FileType::Directory {
            return Err(NfsStatus::IsDir);
        }
        let (backend, dir, name) = self.walk_parent(linkpath).await?;
        backend.link(from, dir, &name).await.map(|_| ())
    }

    /// Creates a symbolic link at `linkpath` pointing to `target` (the
    /// target need not exist).
    pub async fn symlink(&self, target: &str, linkpath: &str) -> Result<()> {
        self.charge(0).await;
        let (backend, dir, name) = self.walk_parent(linkpath).await?;
        backend.symlink(dir, &name, target).await.map(|_| ())
    }

    /// Reads the target of the symbolic link at `path`.
    pub async fn readlink(&self, path: &str) -> Result<String> {
        self.charge(0).await;
        let (backend, fh, attr) = self.resolve_follow(path, false).await?;
        if attr.ftype != FileType::Symlink {
            return Err(NfsStatus::Inval);
        }
        backend.readlink(fh).await
    }

    /// Removes a regular file by path.
    pub async fn unlink(&self, path: &str) -> Result<()> {
        self.charge(0).await;
        let (backend, dir, name) = self.walk_parent(path).await?;
        let (victim, _) = backend.lookup(dir, &name).await?;
        backend.remove(dir, &name, victim).await
    }

    /// Creates a directory by path.
    pub async fn mkdir(&self, path: &str) -> Result<()> {
        self.charge(0).await;
        let (backend, dir, name) = self.walk_parent(path).await?;
        backend.mkdir(dir, &name).await.map(|_| ())
    }

    /// Removes an empty directory by path.
    pub async fn rmdir(&self, path: &str) -> Result<()> {
        self.charge(0).await;
        let (backend, dir, name) = self.walk_parent(path).await?;
        backend.rmdir(dir, &name).await
    }

    /// Renames within one mount.
    pub async fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.charge(0).await;
        let (b1, d1, n1) = self.walk_parent(from).await?;
        let (_b2, d2, n2) = self.walk_parent(to).await?;
        // Cross-mount renames are not supported (as in Unix: EXDEV).
        b1.rename(d1, &n1, d2, &n2).await
    }

    /// Lists a directory's entry names, sorted.
    pub async fn readdir(&self, path: &str) -> Result<Vec<String>> {
        self.charge(0).await;
        let (backend, dir, attr) = self.resolve_follow(path, true).await?;
        if attr.ftype != FileType::Directory {
            return Err(NfsStatus::NotDir);
        }
        let mut names: Vec<String> = backend
            .readdir(dir)
            .await?
            .into_iter()
            .map(|e| e.name)
            .collect();
        names.sort_unstable();
        Ok(names)
    }
}
