//! The GFS-like virtual file system layer (paper §4.1).
//!
//! In Ultrix, the "generic file system" separates filesystem-generic code
//! (name resolution, the buffer cache, file descriptors) from
//! filesystem-specific code (local disk, NFS, SNFS). This crate plays the
//! same role for the simulation:
//!
//! * a [`Vfs`] holds a mount table mapping path prefixes to backends
//!   (local file system, NFS client, or SNFS client);
//! * a [`Proc`] is one simulated process: an fd table plus per-syscall
//!   CPU charges against its host's CPU resource;
//! * pathname translation walks **one component at a time**, exactly like
//!   NFS/SNFS do on the wire — this is why roughly half of all RPC calls
//!   in the paper's Table 5-2 are `lookup`s, for both protocols.

mod mount;
mod process;

pub use mount::{FsBackend, Mount, Vfs};
pub use process::{Fd, OpenFlags, Proc, SyscallCosts};

#[cfg(test)]
mod tests {
    use super::*;
    use spritely_blockdev::{Disk, DiskParams};
    use spritely_localfs::{FsParams, LocalFs};
    use spritely_proto::{FileType, NfsStatus};
    use spritely_sim::{Resource, Sim, SimDuration};

    fn local_rig() -> (Sim, Proc) {
        let sim = Sim::new();
        let disk = Disk::new(&sim, "d", DiskParams::ra81());
        let fs = LocalFs::new(&sim, 1, disk, FsParams::default());
        let root_fh = fs.root();
        let vfs = Vfs::new(vec![Mount::new("/", FsBackend::Local(fs), root_fh)]);
        let cpu = Resource::new(&sim, "cpu", 1);
        let proc = Proc::new(&sim, vfs, cpu, SyscallCosts::default());
        (sim, proc)
    }

    #[test]
    fn create_write_read_via_paths() {
        let (sim, p) = local_rig();
        sim.block_on(async move {
            p.mkdir("/dir").await.unwrap();
            let fd = p
                .open("/dir/file", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, b"hello world").await.unwrap();
            p.close(fd).await.unwrap();
            let fd = p.open("/dir/file", OpenFlags::read()).await.unwrap();
            let data = p.read(fd, 100).await.unwrap();
            assert_eq!(data, b"hello world");
            let eof = p.read(fd, 100).await.unwrap();
            assert!(eof.is_empty());
            p.close(fd).await.unwrap();
        });
    }

    #[test]
    fn sequential_position_tracking() {
        let (sim, p) = local_rig();
        sim.block_on(async move {
            let fd = p.open("/f", OpenFlags::create_write()).await.unwrap();
            p.write(fd, b"abc").await.unwrap();
            p.write(fd, b"def").await.unwrap();
            p.close(fd).await.unwrap();
            let fd = p.open("/f", OpenFlags::read()).await.unwrap();
            assert_eq!(p.read(fd, 3).await.unwrap(), b"abc");
            assert_eq!(p.read(fd, 3).await.unwrap(), b"def");
            p.close(fd).await.unwrap();
        });
    }

    #[test]
    fn stat_and_readdir() {
        let (sim, p) = local_rig();
        sim.block_on(async move {
            p.mkdir("/d").await.unwrap();
            let fd = p.open("/d/x", OpenFlags::create_write()).await.unwrap();
            p.write(fd, &[0u8; 100]).await.unwrap();
            p.close(fd).await.unwrap();
            let st = p.stat("/d/x").await.unwrap();
            assert_eq!(st.size, 100);
            assert_eq!(st.ftype, FileType::Regular);
            let names = p.readdir("/d").await.unwrap();
            assert_eq!(names, vec!["x".to_string()]);
        });
    }

    #[test]
    fn unlink_and_missing_files() {
        let (sim, p) = local_rig();
        sim.block_on(async move {
            let fd = p.open("/f", OpenFlags::create_write()).await.unwrap();
            p.close(fd).await.unwrap();
            p.unlink("/f").await.unwrap();
            assert_eq!(
                p.open("/f", OpenFlags::read()).await.unwrap_err(),
                NfsStatus::NoEnt
            );
            assert_eq!(p.unlink("/f").await.unwrap_err(), NfsStatus::NoEnt);
        });
    }

    #[test]
    fn truncate_on_reopen() {
        let (sim, p) = local_rig();
        sim.block_on(async move {
            let fd = p.open("/f", OpenFlags::create_write()).await.unwrap();
            p.write(fd, &[1u8; 5000]).await.unwrap();
            p.close(fd).await.unwrap();
            let fd = p.open("/f", OpenFlags::create_write()).await.unwrap();
            p.close(fd).await.unwrap();
            assert_eq!(p.stat("/f").await.unwrap().size, 0, "O_TRUNC semantics");
        });
    }

    #[test]
    fn rename_moves_files() {
        let (sim, p) = local_rig();
        sim.block_on(async move {
            p.mkdir("/a").await.unwrap();
            p.mkdir("/b").await.unwrap();
            let fd = p.open("/a/f", OpenFlags::create_write()).await.unwrap();
            p.write(fd, b"x").await.unwrap();
            p.close(fd).await.unwrap();
            p.rename("/a/f", "/b/g").await.unwrap();
            assert!(p.stat("/a/f").await.is_err());
            assert_eq!(p.stat("/b/g").await.unwrap().size, 1);
        });
    }

    #[test]
    fn syscall_cpu_is_charged() {
        let sim = Sim::new();
        let disk = Disk::new(&sim, "d", DiskParams::ra81());
        let fs = LocalFs::new(&sim, 1, disk, FsParams::default());
        let root_fh = fs.root();
        let vfs = Vfs::new(vec![Mount::new("/", FsBackend::Local(fs), root_fh)]);
        let cpu = Resource::new(&sim, "cpu", 1);
        let costs = SyscallCosts {
            per_call: SimDuration::from_micros(100),
            per_kb: SimDuration::from_micros(25),
        };
        let p = Proc::new(&sim, vfs, cpu.clone(), costs);
        sim.block_on(async move {
            let fd = p.open("/f", OpenFlags::create_write()).await.unwrap();
            p.write(fd, &[0u8; 4096]).await.unwrap();
            p.close(fd).await.unwrap();
        });
        assert!(
            cpu.busy_permit_micros() >= 100 * 3,
            "per-syscall CPU charged"
        );
    }

    #[test]
    fn mount_prefix_resolution_prefers_longest() {
        let sim = Sim::new();
        let d1 = Disk::new(&sim, "d1", DiskParams::ra81());
        let d2 = Disk::new(&sim, "d2", DiskParams::ra81());
        let fs1 = LocalFs::new(&sim, 1, d1, FsParams::default());
        let fs2 = LocalFs::new(&sim, 2, d2, FsParams::default());
        let r1 = fs1.root();
        let r2 = fs2.root();
        let vfs = Vfs::new(vec![
            Mount::new("/", FsBackend::Local(fs1), r1),
            Mount::new("/tmp", FsBackend::Local(fs2.clone()), r2),
        ]);
        let cpu = Resource::new(&sim, "cpu", 1);
        let p = Proc::new(&sim, vfs, cpu, SyscallCosts::default());
        sim.block_on(async move {
            let fd = p.open("/tmp/x", OpenFlags::create_write()).await.unwrap();
            p.write(fd, b"in tmp fs").await.unwrap();
            p.close(fd).await.unwrap();
            // The file lives in fs2, not fs1.
            let (fh, _) = fs2.lookup(r2, "x").unwrap();
            assert_eq!(fs2.getattr(fh).unwrap().size, 9);
        });
    }

    #[test]
    fn nested_path_walk() {
        let (sim, p) = local_rig();
        sim.block_on(async move {
            p.mkdir("/a").await.unwrap();
            p.mkdir("/a/b").await.unwrap();
            p.mkdir("/a/b/c").await.unwrap();
            let fd = p
                .open("/a/b/c/deep.txt", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, b"deep").await.unwrap();
            p.close(fd).await.unwrap();
            assert_eq!(p.stat("/a/b/c/deep.txt").await.unwrap().size, 4);
            assert_eq!(p.stat("/a/missing/c").await.unwrap_err(), NfsStatus::NoEnt);
        });
    }

    #[test]
    fn write_at_and_read_at() {
        let (sim, p) = local_rig();
        sim.block_on(async move {
            let fd = p.open("/f", OpenFlags::create_write()).await.unwrap();
            p.write_at(fd, 100, b"xyz").await.unwrap();
            p.close(fd).await.unwrap();
            let fd = p.open("/f", OpenFlags::read()).await.unwrap();
            let got = p.read_at(fd, 100, 3).await.unwrap();
            assert_eq!(got, b"xyz");
            assert_eq!(p.stat("/f").await.unwrap().size, 103);
            p.close(fd).await.unwrap();
        });
    }

    #[test]
    fn bad_fd_rejected() {
        let (sim, p) = local_rig();
        sim.block_on(async move {
            assert_eq!(p.read(Fd(99), 1).await.unwrap_err(), NfsStatus::Inval);
            let fd = p.open("/f", OpenFlags::create_write()).await.unwrap();
            p.close(fd).await.unwrap();
            assert_eq!(p.write(fd, b"x").await.unwrap_err(), NfsStatus::Inval);
        });
    }

    #[test]
    fn read_only_fd_cannot_write() {
        let (sim, p) = local_rig();
        sim.block_on(async move {
            let fd = p.open("/f", OpenFlags::create_write()).await.unwrap();
            p.close(fd).await.unwrap();
            let fd = p.open("/f", OpenFlags::read()).await.unwrap();
            assert_eq!(p.write(fd, b"x").await.unwrap_err(), NfsStatus::Access);
            p.close(fd).await.unwrap();
        });
    }
}

#[cfg(test)]
mod symlink_tests {
    use super::*;
    use spritely_blockdev::{Disk, DiskParams};
    use spritely_localfs::{FsParams, LocalFs};
    use spritely_proto::{FileType, NfsStatus};
    use spritely_sim::{Resource, Sim};

    fn rig() -> (Sim, Proc) {
        let sim = Sim::new();
        let disk = Disk::new(&sim, "d", DiskParams::ra81());
        let fs = LocalFs::new(&sim, 1, disk, FsParams::default());
        let root_fh = fs.root();
        let vfs = Vfs::new(vec![Mount::new("/", FsBackend::Local(fs), root_fh)]);
        let cpu = Resource::new(&sim, "cpu", 1);
        let proc = Proc::new(&sim, vfs, cpu, SyscallCosts::default());
        (sim, proc)
    }

    #[test]
    fn symlink_chain_resolves() {
        let (sim, p) = rig();
        sim.block_on(async move {
            let fd = p.open("/real", OpenFlags::create_write()).await.unwrap();
            p.write(fd, b"abc").await.unwrap();
            p.close(fd).await.unwrap();
            p.symlink("/real", "/l1").await.unwrap();
            p.symlink("/l1", "/l2").await.unwrap();
            p.symlink("/l2", "/l3").await.unwrap();
            let st = p.stat("/l3").await.unwrap();
            assert_eq!(st.size, 3);
            assert_eq!(st.ftype, FileType::Regular);
        });
    }

    #[test]
    fn symlink_in_the_middle_of_a_path() {
        let (sim, p) = rig();
        sim.block_on(async move {
            p.mkdir("/data").await.unwrap();
            p.mkdir("/data/v2").await.unwrap();
            let fd = p
                .open("/data/v2/file", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, b"x").await.unwrap();
            p.close(fd).await.unwrap();
            // "current" points at the versioned directory.
            p.symlink("/data/v2", "/data/current").await.unwrap();
            assert_eq!(p.stat("/data/current/file").await.unwrap().size, 1);
            let names = p.readdir("/data/current").await.unwrap();
            assert_eq!(names, vec!["file".to_string()]);
        });
    }

    #[test]
    fn unlink_removes_the_link_not_the_target() {
        let (sim, p) = rig();
        sim.block_on(async move {
            let fd = p.open("/t", OpenFlags::create_write()).await.unwrap();
            p.close(fd).await.unwrap();
            p.symlink("/t", "/alias").await.unwrap();
            p.unlink("/alias").await.unwrap();
            assert!(p.stat("/t").await.is_ok(), "target untouched");
            assert_eq!(p.lstat("/alias").await.unwrap_err(), NfsStatus::NoEnt);
        });
    }

    #[test]
    fn readlink_on_regular_file_is_invalid() {
        let (sim, p) = rig();
        sim.block_on(async move {
            let fd = p.open("/f", OpenFlags::create_write()).await.unwrap();
            p.close(fd).await.unwrap();
            assert_eq!(p.readlink("/f").await.unwrap_err(), NfsStatus::Inval);
        });
    }

    #[test]
    fn dotdot_relative_target_escaping_root_saturates() {
        let (sim, p) = rig();
        sim.block_on(async move {
            p.mkdir("/d").await.unwrap();
            let fd = p.open("/top", OpenFlags::create_write()).await.unwrap();
            p.close(fd).await.unwrap();
            // "../../top" from /d: the extra .. saturates at the root.
            p.symlink("../../top", "/d/esc").await.unwrap();
            assert!(p.stat("/d/esc").await.is_ok());
        });
    }

    #[test]
    fn link_then_write_through_either_name() {
        let (sim, p) = rig();
        sim.block_on(async move {
            let fd = p.open("/a", OpenFlags::create_write()).await.unwrap();
            p.write(fd, b"1111").await.unwrap();
            p.close(fd).await.unwrap();
            p.link("/a", "/b").await.unwrap();
            // Append through the second name.
            let fd = p.open("/b", OpenFlags::read_write()).await.unwrap();
            p.write_at(fd, 4, b"2222").await.unwrap();
            p.close(fd).await.unwrap();
            let fd = p.open("/a", OpenFlags::read()).await.unwrap();
            assert_eq!(p.read(fd, 100).await.unwrap(), b"11112222");
            p.close(fd).await.unwrap();
        });
    }
}
